"""The perf gate's cpu_count blind spot.

The committed baseline records the machine it was measured on; a runner
with a single CPU executes the "parallel" arm serially, so gating its
parallel speedup ratios against a multi-core baseline (or vice versa)
only measures process overhead.  The gate must skip the parallel keys —
with a one-line notice — instead of failing spuriously, while still
gating the serial ratio and output identity.
"""

import json

import repro.bench.overhead as overhead
import repro.bench.timing as timing
from repro.bench.report import main
from repro.bench.timing import check_against_baseline, parallel_gate_skip_reason


def bench_doc(cpu_count=4, **speedup):
    doc = {
        "suite": ["go"],
        "jobs": 2,
        "arms": {},
        "speedup": {
            "serial_vs_baseline": 1.5,
            "parallel_vs_baseline": 2.0,
            "parallel_vs_serial": 1.3,
        },
        "outputs_identical": True,
    }
    if cpu_count is not None:
        doc["cpu_count"] = cpu_count
    doc["speedup"].update(speedup)
    return doc


def test_no_skip_when_both_sides_have_cores():
    assert parallel_gate_skip_reason(bench_doc(4), bench_doc(8)) is None


def test_missing_cpu_count_is_unknown_not_single_core():
    assert parallel_gate_skip_reason(bench_doc(None), bench_doc(None)) is None


def test_single_core_runner_names_itself():
    reason = parallel_gate_skip_reason(bench_doc(1), bench_doc(4))
    assert reason is not None
    assert "this runner" in reason
    assert "cpu_count=1" in reason


def test_single_core_baseline_names_the_baseline():
    reason = parallel_gate_skip_reason(bench_doc(4), bench_doc(1))
    assert reason is not None
    assert "the committed baseline" in reason


def test_parallel_keys_skipped_on_single_core_runner():
    bench = bench_doc(1, parallel_vs_baseline=0.4, parallel_vs_serial=0.4)
    baseline = bench_doc(4)
    assert check_against_baseline(bench, baseline) == []


def test_serial_key_still_gated_on_single_core_runner():
    bench = bench_doc(1, serial_vs_baseline=0.5)
    baseline = bench_doc(4, serial_vs_baseline=2.0)
    failures = check_against_baseline(bench, baseline)
    assert len(failures) == 1
    assert "serial_vs_baseline regressed" in failures[0]


def test_parallel_keys_gated_normally_with_cores():
    bench = bench_doc(4, parallel_vs_baseline=0.4)
    baseline = bench_doc(4, parallel_vs_baseline=4.0)
    failures = check_against_baseline(bench, baseline)
    assert len(failures) == 1
    assert "parallel_vs_baseline regressed" in failures[0]


def _stub_measurement(monkeypatch, cpu_count):
    monkeypatch.setattr(
        timing, "time_suite", lambda jobs, **kwargs: bench_doc(cpu_count)
    )
    monkeypatch.setattr(
        overhead,
        "measure_overhead",
        lambda names: {"worst_estimated_overhead_pct": 0.0},
    )
    monkeypatch.setattr(overhead, "check_overhead", lambda doc: [])


def _run(tmp_path, baseline_doc):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline_doc))
    return main(
        ["--timing", str(tmp_path / "bench.json"), "--perf-baseline", str(path)]
    )


def test_report_prints_skip_notice_and_passes(tmp_path, capsys, monkeypatch):
    _stub_measurement(monkeypatch, cpu_count=1)
    # A regressed parallel ratio that would fail the gate on a real
    # multi-core runner must be waived, with the notice explaining why.
    code = _run(tmp_path, bench_doc(4, parallel_vs_baseline=50.0))
    captured = capsys.readouterr()
    assert code == 0
    assert "skipping parallel speedup checks" in captured.err
    assert "cpu_count=1" in captured.err
    assert "perf gate passed" in captured.err


def test_report_gates_parallel_when_cores_available(tmp_path, capsys, monkeypatch):
    _stub_measurement(monkeypatch, cpu_count=4)
    code = _run(tmp_path, bench_doc(4, parallel_vs_baseline=50.0))
    captured = capsys.readouterr()
    assert code == 1
    assert "skipping parallel speedup checks" not in captured.err
    assert "parallel_vs_baseline regressed" in captured.err


def test_report_rejects_non_integer_baseline_cpu_count(
    tmp_path, capsys, monkeypatch
):
    _stub_measurement(monkeypatch, cpu_count=4)
    code = _run(tmp_path, bench_doc("four"))
    captured = capsys.readouterr()
    assert code == 2
    assert "cpu_count must be an integer, got str" in captured.err
