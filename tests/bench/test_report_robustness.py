"""repro-report failure handling: perf-baseline validation (exit 2, one
line, names the path), resilience flag validation, and the degraded
exit code 3."""

import json

import pytest

import repro.bench.report as report
import repro.bench.timing as timing
from repro.bench.metrics import BenchmarkRow
from repro.bench.report import main
from repro.bench.timing import check_against_baseline


def fake_bench():
    return {
        "suite": ["go"],
        "jobs": 2,
        "cpu_count": 4,
        "arms": {},
        "speedup": {
            "serial_vs_baseline": 1.5,
            "parallel_vs_baseline": 2.0,
            "parallel_vs_serial": 1.3,
        },
        "outputs_identical": True,
    }


@pytest.fixture
def stub_timing(monkeypatch):
    monkeypatch.setattr(timing, "time_suite", lambda jobs, **kwargs: fake_bench())


def run_timing_against(tmp_path, baseline_path):
    return main(
        [
            "--timing",
            str(tmp_path / "bench.json"),
            "--perf-baseline",
            str(baseline_path),
        ]
    )


def test_missing_baseline_exits_2_naming_the_path(tmp_path, capsys, stub_timing):
    missing = tmp_path / "nope.json"
    code = run_timing_against(tmp_path, missing)
    captured = capsys.readouterr()
    assert code == 2
    (line,) = [
        ln for ln in captured.err.splitlines() if "perf baseline" in ln
    ]
    assert line.startswith("repro-report: cannot read perf baseline")
    assert str(missing) in line


def test_malformed_json_baseline_exits_2(tmp_path, capsys, stub_timing):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    code = run_timing_against(tmp_path, bad)
    captured = capsys.readouterr()
    assert code == 2
    assert f"cannot read perf baseline {bad}" in captured.err


def test_non_object_json_baseline_exits_2(tmp_path, capsys, stub_timing):
    wrong_shape = tmp_path / "list.json"
    wrong_shape.write_text("[1, 2, 3]")
    code = run_timing_against(tmp_path, wrong_shape)
    captured = capsys.readouterr()
    assert code == 2
    assert f"malformed perf baseline {wrong_shape}" in captured.err
    assert "expected a JSON object, got list" in captured.err


def test_junk_speedup_values_do_not_crash_the_gate():
    baseline = {"speedup": {"serial_vs_baseline": "fast", "extra": None}}
    assert check_against_baseline(fake_bench(), baseline) == []
    assert check_against_baseline(fake_bench(), {"speedup": [1, 2]}) == []


def test_regressed_speedup_still_fails_the_gate():
    baseline = {"speedup": {"parallel_vs_baseline": 4.0}}
    failures = check_against_baseline(fake_bench(), baseline)
    assert len(failures) == 1
    assert "parallel_vs_baseline regressed" in failures[0]


def test_good_baseline_passes(tmp_path, capsys, stub_timing):
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"speedup": {"serial_vs_baseline": 1.4}}))
    code = run_timing_against(tmp_path, good)
    captured = capsys.readouterr()
    assert code == 0
    assert "perf gate passed" in captured.err


def test_chaos_flags_are_incompatible_with_timing(tmp_path, capsys):
    code = main(
        [
            "--timing",
            str(tmp_path / "bench.json"),
            "--jobs",
            "2",
            "--chaos",
            "crash=0.1",
        ]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "incompatible with --timing" in captured.err


def test_chaos_flags_require_parallel_jobs(capsys):
    code = main(["--chaos", "crash=0.1"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--jobs != 1" in captured.err


def test_bad_chaos_spec_exits_2(capsys):
    code = main(["--jobs", "2", "--chaos", "hang=many"])
    captured = capsys.readouterr()
    assert code == 2
    assert "repro-report: --chaos:" in captured.err


def fake_row(name, quarantined=(), retries=0, degraded=False):
    return BenchmarkRow(
        name=name,
        promoter="sastry-ju",
        static_loads_before=10,
        static_loads_after=5,
        static_stores_before=8,
        static_stores_after=6,
        dynamic_loads_before=100,
        dynamic_loads_after=60,
        dynamic_stores_before=80,
        dynamic_stores_after=70,
        output_matches=True,
        quarantined=list(quarantined),
        retries=retries,
        degraded=degraded,
        diagnostics={"summary": "stub"},
    )


def test_degraded_workloads_exit_3_with_a_resilience_summary(
    tmp_path, capsys, monkeypatch
):
    rows = [fake_row("go", quarantined=["poison"], retries=2, degraded=True)]
    monkeypatch.setattr(
        report, "measure_workload", lambda *a, **k: rows[0]
    )
    monkeypatch.setattr(report, "ORDER", ["go"])
    diag_dir = tmp_path / "diags"
    code = main(
        [
            "--table",
            "2",
            "--jobs",
            "2",
            "--chaos",
            "transient=0.5,seed=1",
            "--diagnostics-dir",
            str(diag_dir),
        ]
    )
    captured = capsys.readouterr()
    assert code == 3
    assert (
        "repro-report: resilience: 1 function(s) quarantined, 2 retries "
        "across 1/1 degraded workload(s); quarantined: poison" in captured.err
    )
    assert json.loads((diag_dir / "go.json").read_text()) == {"summary": "stub"}


def test_clean_resilient_run_exits_0(capsys, monkeypatch):
    monkeypatch.setattr(
        report, "measure_workload", lambda *a, **k: fake_row("go")
    )
    monkeypatch.setattr(report, "ORDER", ["go"])
    code = main(["--table", "2", "--jobs", "2", "--timeout", "60"])
    captured = capsys.readouterr()
    assert code == 0
    assert "0 function(s) quarantined" in captured.err
