"""The proxy workloads themselves: compile, verify, run deterministically."""

import pytest

from repro.bench.workloads import ORDER, WORKLOADS
from repro.frontend.lower import compile_source
from repro.ir.verify import verify_module
from repro.profile.interp import run_module


@pytest.mark.parametrize("name", ORDER)
def test_workload_compiles_and_verifies(name):
    module = compile_source(WORKLOADS[name].source)
    verify_module(module)
    assert "main" in module.functions


@pytest.mark.parametrize("name", ORDER)
def test_workload_runs_deterministically(name):
    workload = WORKLOADS[name]
    first = run_module(compile_source(workload.source))
    second = run_module(compile_source(workload.source))
    assert first.output == second.output
    assert first.return_value == second.return_value
    assert first.output, f"{name} must produce observable output"


@pytest.mark.parametrize("name", ORDER)
def test_workload_has_scalar_global_traffic(name):
    # Every proxy must exercise the paper's candidate set: singleton
    # loads AND stores of global scalars.
    result = run_module(compile_source(WORKLOADS[name].source))
    assert result.loads > 50, name
    assert result.stores > 20, name


@pytest.mark.parametrize("name", ORDER)
def test_workload_is_interpreter_scale(name):
    # Keep the evaluation fast: each proxy stays under half a million
    # interpreter steps.
    result = run_module(compile_source(WORKLOADS[name].source))
    assert result.steps < 500_000, name


def test_registry_complete():
    assert set(ORDER) == set(WORKLOADS)
    assert len(ORDER) == 8  # the SPECInt95 count
    for workload in WORKLOADS.values():
        assert workload.pressure_routines, workload.name
        assert workload.description


def test_pressure_routines_exist():
    for name in ORDER:
        workload = WORKLOADS[name]
        module = compile_source(workload.source)
        for routine in workload.pressure_routines:
            assert routine in module.functions, (name, routine)
