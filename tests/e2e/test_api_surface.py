"""The documented public API (docs/API.md) must stay importable, and the
README quickstart must run as written."""


def test_api_imports():
    from repro.frontend import CompileError, compile_source, parse_program
    from repro.profile import (
        Interpreter,
        InterpreterError,
        InterpreterLimitError,
        ProfileData,
        estimate_profile,
        run_module,
    )
    from repro.promotion import (
        PromotionError,
        PromotionOptions,
        PromotionPipeline,
        construct_ssa_webs,
        promote_function,
    )
    from repro.baselines import LuCooperPipeline, MahlkePipeline
    from repro.robustness import (
        BisectionReport,
        FaultInjector,
        FunctionOutcome,
        FunctionSnapshot,
        PipelineDiagnostics,
        UnsoundAliasModel,
        capture_state,
        isolate_culprits,
        snapshot_function,
    )
    from repro.ssa.construct import construct_ssa
    from repro.ssa.destruct import destruct_ssa, eliminate_phis
    from repro.ssa.incremental import (
        convert_var_to_ssa,
        names_of_var,
        update_ssa_for_cloned_resources,
    )
    from repro.ssa.css96 import css96_update
    from repro.ssa.unionfind import UnionFind
    from repro.analysis import (
        DominatorTree,
        IntervalTree,
        Liveness,
        idf_cytron,
        idf_sreedhar_gao,
        iterated_dominance_frontier,
        normalize_for_promotion,
        reverse_postorder,
        split_critical_edges,
        split_edge,
    )
    from repro.memory import AliasModel, MemName, MemoryVar, build_memory_ssa
    from repro.ir import (
        BasicBlock,
        Function,
        IRBuilder,
        Module,
        print_function,
        print_module,
        verify_function,
        verify_module,
    )
    from repro.ir.dot import function_to_dot
    from repro.ir.parser import parse_module
    from repro.passes import (
        dead_code_elimination,
        dead_memory_elimination,
        propagate_copies,
        remove_dummy_loads,
    )
    from repro.passes.unroll import unroll_function, unroll_module
    from repro.regalloc import build_interference_graph, color_graph, colors_needed
    from repro.bench import WORKLOADS, measure_workload, pressure_rows
    from repro.bench.tables import format_table1, format_table2, format_table3
    from repro.service import (
        ClusterConfig,
        FingerprintResolver,
        LocalCluster,
        PromotionDaemon,
        PromotionRouter,
        RouterConfig,
        ServiceClient,
        ServiceConfig,
        ServiceProcess,
        hrw_order,
        run_daemon,
    )


def test_readme_quickstart():
    from repro.frontend import compile_source
    from repro.promotion import PromotionPipeline

    module = compile_source(
        """
        int hits = 0;
        void report(int n) { print(n); }
        int main() {
            for (int i = 0; i < 1000; i++) {
                hits += i % 3;
                if (hits % 997 == 0) report(hits);   // cold call
            }
            return hits % 256;
        }
        """
    )
    result = PromotionPipeline().run(module)
    assert result.output_matches
    assert "behaviour preserved: True" in result.report()
    # The README claims the hot loop's ~1000 loads collapse.
    assert result.dynamic_after.loads <= 8
