"""Determinism: every pass must produce byte-identical IR run-to-run.

The implementation promises deterministic iteration everywhere (ordered
containers, no id()-ordered sets leaking into output); this is what the
benchmark numbers' reproducibility rests on.
"""

import pytest

from repro.bench.workloads import ORDER, WORKLOADS
from repro.frontend.lower import compile_source
from repro.ir.printer import print_module
from repro.passes.unroll import unroll_module
from repro.promotion.pipeline import PromotionPipeline

from tests.property.genprog import random_program


def promoted_text(source):
    module = compile_source(source)
    PromotionPipeline().run(module)
    return print_module(module)


@pytest.mark.parametrize("name", ORDER)
def test_workload_promotion_deterministic(name):
    source = WORKLOADS[name].source
    assert promoted_text(source) == promoted_text(source)


@pytest.mark.parametrize("seed", [1, 7, 42, 1234, 99999])
def test_random_program_promotion_deterministic(seed):
    source = random_program(seed)
    assert promoted_text(source) == promoted_text(source)


@pytest.mark.parametrize("seed", [3, 17, 2024])
def test_unroll_deterministic(seed):
    source = random_program(seed)

    def text():
        module = compile_source(source)
        unroll_module(module)
        return print_module(module)

    assert text() == text()
