"""Every example script must run clean (they assert their own claims)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), f"{script.name} produced no output"
