"""Exit-code precedence across the CLI tools: 2 > 1 > 3 > return value.

Driver errors (2) beat strict failures (1), which beat degraded
completions (3), which beat the program's own return value — and
best-effort observability exports must never reshuffle that order: a
degraded run with an unwritable ``--trace-out`` still exits 3.
"""

import json

import pytest

import repro.bench.overhead as overhead
import repro.bench.report as report
import repro.bench.timing as timing
from repro.bench.metrics import BenchmarkRow
from repro.frontend.cli import main as minic_main

# A poison function: chaos with crash=1.0 scoped to `step` crashes every
# attempt, so the resilient executor quarantines it and the run
# completes degraded (behaviour preserved — quarantine is the
# pre-promotion IR).
POISON_PROGRAM = """
int acc = 0;
int step(int k) { acc += k; return acc; }
int main() {
    for (int i = 0; i < 25; i++) step(i);
    print(acc);
    return 5;
}
"""

CHAOS = "crash=1.0,only=step,seed=1"
DEGRADED_FLAGS = ["--promote", "--jobs", "2", "--retries", "1", "--chaos", CHAOS]


@pytest.fixture
def poison_file(tmp_path):
    path = tmp_path / "poison.c"
    path.write_text(POISON_PROGRAM)
    return str(path)


# -- repro-minic -----------------------------------------------------------


@pytest.mark.parametrize(
    "flags,expected",
    [
        pytest.param([], 5, id="plain-run-returns-value"),
        pytest.param(["--promote"], 5, id="clean-promote-returns-value"),
        pytest.param(DEGRADED_FLAGS, 3, id="degraded-beats-return-value"),
        pytest.param(
            DEGRADED_FLAGS + ["--strict"], 1, id="strict-beats-degraded"
        ),
        pytest.param(
            ["--promote", "--jobs", "1", "--chaos", CHAOS, "--strict"],
            2,
            id="driver-error-beats-strict",
        ),
    ],
)
def test_minic_precedence(poison_file, capsys, flags, expected):
    code = minic_main([poison_file] + flags)
    captured = capsys.readouterr()
    assert code == expected
    if expected in (1, 3, 5):
        assert captured.out == "300\n"
    if expected == 3:
        assert "repro-minic: degraded" in captured.err
    if expected == 1:
        assert "repro-minic: strict" in captured.err
    if expected == 2:
        assert "repro-minic: error" in captured.err


def test_minic_unwritable_trace_out_keeps_degraded_exit(poison_file, capsys):
    code = minic_main(
        [poison_file]
        + DEGRADED_FLAGS
        + ["--trace-out", "/nonexistent-dir/trace.json"],
    )
    captured = capsys.readouterr()
    assert code == 3
    assert captured.out == "300\n"
    assert "cannot write trace" in captured.err
    assert "repro-minic: degraded" in captured.err


def test_minic_missing_source_is_a_driver_error(capsys):
    assert minic_main(["/nonexistent-dir/prog.c"]) == 2
    assert "repro-minic: error" in capsys.readouterr().err


# -- repro-report ----------------------------------------------------------


def fake_row(name, quarantined=(), retries=0, degraded=False):
    return BenchmarkRow(
        name=name,
        promoter="sastry-ju",
        static_loads_before=10,
        static_loads_after=5,
        static_stores_before=8,
        static_stores_after=6,
        dynamic_loads_before=100,
        dynamic_loads_after=60,
        dynamic_stores_before=80,
        dynamic_stores_after=70,
        output_matches=True,
        quarantined=list(quarantined),
        retries=retries,
        degraded=degraded,
        diagnostics={"summary": "stub"},
    )


@pytest.fixture
def degraded_suite(monkeypatch):
    row = fake_row("go", quarantined=["poison"], retries=1, degraded=True)
    monkeypatch.setattr(report, "measure_workload", lambda *a, **k: row)
    monkeypatch.setattr(report, "ORDER", ["go"])


def test_report_degraded_exits_3(degraded_suite, capsys):
    code = report.main(["--table", "2", "--jobs", "2", "--chaos", CHAOS])
    assert code == 3
    assert "repro-report: resilience" in capsys.readouterr().err


def test_report_unwritable_trace_out_keeps_degraded_exit(degraded_suite, capsys):
    code = report.main(
        [
            "--table",
            "2",
            "--jobs",
            "2",
            "--chaos",
            CHAOS,
            "--trace-out",
            "/nonexistent-dir/trace.json",
        ]
    )
    captured = capsys.readouterr()
    assert code == 3
    assert "cannot write trace" in captured.err


def test_report_unwritable_diagnostics_dir_beats_degraded(
    degraded_suite, tmp_path, capsys
):
    # The diagnostics report is a requested artifact (not best-effort
    # observability), so failing to write it is a driver error: 2 > 3.
    blocker = tmp_path / "file"
    blocker.write_text("not a directory")
    code = report.main(
        [
            "--table",
            "2",
            "--jobs",
            "2",
            "--chaos",
            CHAOS,
            "--diagnostics-dir",
            str(blocker / "sub"),
        ]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot write diagnostics" in captured.err


def test_report_clean_resilient_run_exits_0(monkeypatch, capsys):
    monkeypatch.setattr(report, "measure_workload", lambda *a, **k: fake_row("go"))
    monkeypatch.setattr(report, "ORDER", ["go"])
    assert report.main(["--table", "2", "--jobs", "2", "--timeout", "60"]) == 0


def test_report_unreadable_baseline_beats_gate_failure(
    tmp_path, capsys, monkeypatch
):
    # The bench would fail the gate (exit 1) against any baseline, but
    # an unreadable baseline is a driver error and 2 wins.
    bench = {
        "suite": ["go"],
        "jobs": 2,
        "cpu_count": 4,
        "arms": {},
        "speedup": {
            "serial_vs_baseline": 0.1,
            "parallel_vs_baseline": 0.1,
            "parallel_vs_serial": 0.1,
        },
        "outputs_identical": True,
    }
    monkeypatch.setattr(timing, "time_suite", lambda jobs, **kwargs: bench)
    monkeypatch.setattr(
        overhead,
        "measure_overhead",
        lambda names: {"worst_estimated_overhead_pct": 0.0},
    )
    monkeypatch.setattr(overhead, "check_overhead", lambda doc: [])
    missing = tmp_path / "missing.json"
    code = report.main(
        [
            "--timing",
            str(tmp_path / "bench.json"),
            "--perf-baseline",
            str(missing),
        ]
    )
    assert code == 2
    assert "cannot read perf baseline" in capsys.readouterr().err

    good = tmp_path / "good.json"
    good.write_text(json.dumps({"cpu_count": 4, "speedup": {"serial_vs_baseline": 2.0}}))
    code = report.main(
        ["--timing", str(tmp_path / "bench.json"), "--perf-baseline", str(good)]
    )
    assert code == 1
    assert "serial_vs_baseline regressed" in capsys.readouterr().err
