"""Convergence: running promotion again finds (almost) nothing more and
never undoes its own work."""

import pytest

from repro.bench.workloads import WORKLOADS
from repro.frontend.lower import compile_source
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline

from tests.property.genprog import random_program


@pytest.mark.parametrize("name", ["go", "compress", "vortex"])
def test_second_pass_converges_on_workloads(name):
    module = compile_source(WORKLOADS[name].source)
    first = PromotionPipeline().run(module)
    assert first.output_matches
    second = PromotionPipeline().run(module)
    assert second.output_matches
    # The second pass must not regress the first's dynamic result...
    assert second.dynamic_after.total <= first.dynamic_after.total
    # ...and cannot find much: promotion converged.
    gain = first.dynamic_after.total - second.dynamic_after.total
    assert gain <= max(4, first.dynamic_after.total // 20), (
        name, first.dynamic_after.total, second.dynamic_after.total
    )


@pytest.mark.parametrize("seed", [5, 77, 31337])
def test_second_pass_preserves_semantics_random(seed):
    source = random_program(seed)
    baseline = run_module(compile_source(source), max_steps=4_000_000)
    module = compile_source(source)
    PromotionPipeline().run(module)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    after = run_module(module, max_steps=4_000_000)
    assert after.output == baseline.output
    assert after.globals_snapshot() == baseline.globals_snapshot()
