"""End-to-end: mini-C source → lowering → promotion → identical behaviour
with fewer dynamic memory operations."""

from repro.baselines.lucooper import LuCooperPipeline
from repro.frontend.lower import compile_source
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline

HOT_GLOBAL = """
int counter = 0;
int main() {
    for (int i = 0; i < 200; i++) {
        counter += i;
    }
    return counter % 1000;
}
"""

COLD_CALL = """
int hits = 0;
int log_count = 0;
void note() { log_count++; }
int main() {
    for (int i = 0; i < 300; i++) {
        hits++;
        if (hits % 100 == 0) note();
    }
    print(hits, log_count);
    return 0;
}
"""

POINTER_MIX = """
int x = 0;
int A[8];
int main() {
    int *p = &x;
    for (int i = 0; i < 50; i++) {
        x += 2;
        A[i % 8] = x;
        if (i == 25) *p = 1000;
    }
    print(x, A[1]);
    return 0;
}
"""

STRUCT_FIELDS = """
struct stats { int hits; int total; };
int lookup(int key) {
    for (int probe = 0; probe < 4; probe++) {
        stats.total++;
        if ((key + probe) % 5 == 0) { stats.hits++; return probe; }
    }
    return -1;
}
int main() {
    int found = 0;
    for (int i = 0; i < 90; i++) {
        if (lookup(i) >= 0) found++;
    }
    print(found, stats.hits, stats.total);
    return 0;
}
"""


def _check(src, entry="main"):
    baseline = run_module(compile_source(src), entry=entry)
    module = compile_source(src)
    result = PromotionPipeline(entry=entry).run(module)
    after = run_module(module, entry=entry)
    assert after.output == baseline.output
    assert after.return_value == baseline.return_value
    assert after.globals_snapshot() == baseline.globals_snapshot()
    assert result.output_matches
    return result


def test_hot_global_promoted():
    result = _check(HOT_GLOBAL)
    assert result.dynamic_after.total <= 4
    assert result.dynamic_before.total >= 400


def test_cold_call_partial_promotion():
    result = _check(COLD_CALL)
    # 300 iterations; note() runs 3 times.  Memory traffic should shrink
    # to roughly the cold path.
    assert result.dynamic_after.total < result.dynamic_before.total / 10


def test_pointer_mix_correct_and_improved():
    result = _check(POINTER_MIX)
    assert result.dynamic_after.total < result.dynamic_before.total


def test_struct_fields_promoted_in_callee():
    result = _check(STRUCT_FIELDS)
    assert result.dynamic_after.total < result.dynamic_before.total


def test_promotion_beats_lucooper_on_cold_call():
    ours = PromotionPipeline().run(compile_source(COLD_CALL))
    lc = LuCooperPipeline().run(compile_source(COLD_CALL))
    assert ours.output_matches and lc.output_matches
    assert ours.dynamic_after.total < lc.dynamic_after.total
