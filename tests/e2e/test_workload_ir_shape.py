"""Post-promotion IR shape guards on the proxy workloads: structural
facts the headline numbers depend on, pinned so refactors can't silently
erode them."""

import pytest

from repro.bench.workloads import ORDER, WORKLOADS
from repro.frontend.lower import compile_source
from repro.ir import instructions as I
from repro.ir.verify import verify_module
from repro.promotion.pipeline import PromotionPipeline


@pytest.fixture(scope="module")
def promoted():
    modules = {}
    for name in ORDER:
        module = compile_source(WORKLOADS[name].source)
        result = PromotionPipeline().run(module)
        assert result.output_matches, name
        modules[name] = module
    return modules


def test_all_workloads_verify_after_promotion(promoted):
    for name, module in promoted.items():
        verify_module(module, check_ssa=True, check_memssa=True)


def test_no_dummy_loads_survive(promoted):
    for name, module in promoted.items():
        for function in module.functions.values():
            assert not any(
                isinstance(i, I.DummyAliasedLoad) for i in function.instructions()
            ), (name, function.name)


def test_no_copies_survive_cleanup(promoted):
    # Copy propagation runs in the pipeline cleanup; promotion's copies
    # must all be folded away.
    for name, module in promoted.items():
        for function in module.functions.values():
            assert not any(
                isinstance(i, I.Copy) for i in function.instructions()
            ), (name, function.name)


def test_go_scan_loop_body_is_memory_free(promoted):
    scan = promoted["go"].get_function("scan_board")
    # The position loop's body blocks carry no singleton memory ops for
    # the promoted counters (the cold record_* branches may).
    loop_body = scan.find_block("fbody2")
    assert not any(isinstance(i, (I.Load, I.Store)) for i in loop_body.instructions)


def test_ijpeg_quantize_inner_loop_memory_free(promoted):
    quantize = promoted["ijpeg"].get_function("quantize_block")
    # The per-pixel loop reads qfactor/bias/clip_limit from registers now.
    for block in quantize.blocks:
        if block.name.startswith("fbody"):
            loads = [i for i in block.instructions if isinstance(i, I.Load)]
            assert loads == [], block.name


def test_vortex_untouched(promoted):
    original = compile_source(WORKLOADS["vortex"].source)
    from repro.ssa.construct import construct_ssa

    for f in original.functions.values():
        construct_ssa(f)
    count = lambda m: sum(
        1
        for f in m.functions.values()
        for i in f.instructions()
        if isinstance(i, (I.Load, I.Store))
    )
    assert count(promoted["vortex"]) == count(original)
