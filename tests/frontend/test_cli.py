"""The repro-minic command-line driver."""

import pytest

from repro.frontend.cli import main

PROGRAM = """
int total = 0;
int main() {
    for (int i = 0; i < 10; i++) total += i;
    print(total);
    return total;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


def test_run_plain(source_file, capsys):
    code = main([source_file])
    assert capsys.readouterr().out == "45\n"
    assert code == 45


def test_emit_ir(source_file, capsys):
    code = main([source_file, "--emit-ir"])
    out = capsys.readouterr().out
    assert code == 0
    assert "func @main" in out
    assert "global @total" in out


def test_fingerprint_prints_the_routing_key(source_file, capsys):
    code = main([source_file, "--fingerprint"])
    out = capsys.readouterr().out
    assert code == 0
    from repro.service.routing import FingerprintResolver

    key, kind = FingerprintResolver().resolve(
        {"kind": "minic", "source": PROGRAM}
    )
    assert kind == "module"
    assert out == key + "\n"


def test_promote_and_stats(source_file, capsys):
    code = main([source_file, "--promote", "--stats"])
    captured = capsys.readouterr()
    assert captured.out == "45\n"
    assert "dynamic loads" in captured.err
    assert code == 45


def test_baselines(source_file, capsys):
    for baseline in ("lucooper", "mahlke"):
        code = main([source_file, "--baseline", baseline])
        assert capsys.readouterr().out == "45\n"
        assert code == 45


def test_entry_and_args(tmp_path, capsys):
    path = tmp_path / "f.c"
    path.write_text("int twice(int n) { return n * 2; }")
    code = main([str(path), "--entry", "twice", "--args", "21"])
    assert code == 42


def test_return_code_masked(tmp_path):
    path = tmp_path / "big.c"
    path.write_text("int main() { return 300; }")
    assert main([str(path)]) == 300 & 0xFF


def test_unroll_flag(source_file, capsys):
    code = main([source_file, "--unroll"])
    captured = capsys.readouterr()
    assert captured.out == "45\n"
    assert "unrolled" in captured.err
    assert code == 45


def test_emit_dot(source_file, capsys):
    code = main([source_file, "--emit-dot"])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith('digraph "main"')


def test_unroll_then_promote_flag_combo(source_file, capsys):
    code = main([source_file, "--unroll", "--promote"])
    assert capsys.readouterr().out == "45\n"
    assert code == 45
