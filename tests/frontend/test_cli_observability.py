"""CLI observability surface: --trace-out/--metrics-out wiring, artifact
shape, and the exit-code precedence when an export path is unwritable."""

import json
import os

import pytest

from repro.frontend.cli import main

PROGRAM = """
int total = 0;
int step(int k) {
    for (int i = 0; i < 5; i++) total += k;
    return total;
}
int main() {
    int r = step(2);
    print(r);
    return r;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


def test_trace_and_metrics_exports(source_file, tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.json"
    code = main(
        [
            source_file,
            "--promote",
            "--jobs",
            "2",
            "--trace-out",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
        ]
    )
    captured = capsys.readouterr()
    assert captured.out == "10\n"
    assert code == 10

    trace = json.loads(trace_path.read_text())
    names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
    for phase in ("phase:prepare", "phase:profile", "phase:promote"):
        assert phase in names
    assert "function:step" in names
    assert trace["otherData"]["config"]["jobs"] == 2
    assert trace["otherData"]["profile_source"] == "interpreter"

    metrics = json.loads(metrics_path.read_text())
    doc = metrics["metrics"]
    # Acceptance: exported deltas exactly match the pipeline's report.
    before = doc["pipeline.static_before.loads"]["value"]
    after = doc["pipeline.static_after.loads"]["value"]
    assert isinstance(before, int) and isinstance(after, int)
    assert metrics["metadata"]["config"]["use_cache"] is True


def test_jsonl_suffix_writes_the_event_log(source_file, tmp_path):
    log_path = tmp_path / "t.jsonl"
    main([source_file, "--promote", "--trace-out", str(log_path)])
    lines = [json.loads(line) for line in log_path.read_text().splitlines()]
    assert lines[0]["type"] == "metadata"
    assert any(ln["type"] == "span" for ln in lines)
    assert any(ln["type"] == "metric" for ln in lines)


def test_flags_require_promote(source_file, capsys):
    code = main([source_file, "--trace-out", "t.json"])
    assert code == 2
    assert "require --promote" in capsys.readouterr().err


def test_flags_reject_baselines(source_file, capsys):
    code = main(
        [source_file, "--promote", "--baseline", "lucooper", "--metrics-out", "m.json"]
    )
    assert code == 2


def test_unwritable_trace_keeps_the_program_exit_code(source_file, tmp_path, capsys):
    missing = os.path.join(str(tmp_path), "no-such-dir", "t.json")
    code = main([source_file, "--promote", "--trace-out", missing])
    captured = capsys.readouterr()
    assert code == 10  # the program's return value, not a driver error
    assert "warning: cannot write trace" in captured.err


def test_unwritable_trace_does_not_mask_degraded_exit_3(source_file, tmp_path, capsys):
    missing = os.path.join(str(tmp_path), "no-such-dir", "t.json")
    code = main(
        [
            source_file,
            "--promote",
            "--jobs",
            "2",
            "--retries",
            "1",
            "--chaos",
            "crash=1.0,only=step,seed=1",
            "--trace-out",
            missing,
        ]
    )
    captured = capsys.readouterr()
    # Precedence 2 > 1 > 3 is unchanged by the failed export: the run is
    # degraded (quarantine), so 3 wins; the export failure only warns.
    assert code == 3
    assert "warning: cannot write trace" in captured.err
    assert "degraded" in captured.err


def test_unwritable_trace_does_not_mask_strict_exit_1(source_file, tmp_path, capsys):
    missing = os.path.join(str(tmp_path), "no-such-dir", "t.json")
    code = main(
        [
            source_file,
            "--promote",
            "--jobs",
            "2",
            "--retries",
            "1",
            "--chaos",
            "crash=1.0,only=step,seed=1",
            "--strict",
            "--trace-out",
            missing,
        ]
    )
    captured = capsys.readouterr()
    assert code == 1  # strict (1) outranks degraded (3); export still warns
    assert "warning: cannot write trace" in captured.err


def _both_exports_unwritable(tmp_path):
    return [
        "--trace-out",
        os.path.join(str(tmp_path), "no-such-dir", "t.json"),
        "--metrics-out",
        os.path.join(str(tmp_path), "no-such-dir", "m.json"),
    ]


def test_both_exports_unwritable_reports_both_and_keeps_exit_code(
    source_file, tmp_path, capsys
):
    # One run, two failed exports: the first failure must not short-circuit
    # the second export, and neither touches the program's exit code.
    code = main([source_file, "--promote"] + _both_exports_unwritable(tmp_path))
    captured = capsys.readouterr()
    assert code == 10
    assert "warning: cannot write trace" in captured.err
    assert "warning: cannot write metrics" in captured.err


def test_both_exports_unwritable_keep_degraded_exit_3(source_file, tmp_path, capsys):
    code = main(
        [
            source_file,
            "--promote",
            "--jobs",
            "2",
            "--retries",
            "1",
            "--chaos",
            "crash=1.0,only=step,seed=1",
        ]
        + _both_exports_unwritable(tmp_path)
    )
    captured = capsys.readouterr()
    # Precedence 2 > 1 > 3 holds with two failed exports in one run.
    assert code == 3
    assert "warning: cannot write trace" in captured.err
    assert "warning: cannot write metrics" in captured.err
    assert "degraded" in captured.err


def test_both_exports_unwritable_keep_strict_exit_1(source_file, tmp_path, capsys):
    code = main(
        [
            source_file,
            "--promote",
            "--jobs",
            "2",
            "--retries",
            "1",
            "--chaos",
            "crash=1.0,only=step,seed=1",
            "--strict",
        ]
        + _both_exports_unwritable(tmp_path)
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "warning: cannot write trace" in captured.err
    assert "warning: cannot write metrics" in captured.err


def test_decisions_out_writes_a_reconciled_journal(source_file, tmp_path, capsys):
    path = tmp_path / "decisions.jsonl"
    code = main([source_file, "--promote", "--decisions-out", str(path)])
    assert code == 10
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    head = lines[0]
    assert head["type"] == "metadata"
    totals = head["summary"]["totals"]
    assert (
        totals["promoted"] + totals["partial"] + totals["blocked"]
        == totals["candidates"]
    )
    assert all(line["type"] == "decision" for line in lines[1:])


def test_decisions_out_requires_promote(source_file, capsys):
    code = main([source_file, "--decisions-out", "d.jsonl"])
    assert code == 2
    assert "requires --promote" in capsys.readouterr().err


def test_unwritable_decisions_warns_and_keeps_the_exit_code(
    source_file, tmp_path, capsys
):
    missing = os.path.join(str(tmp_path), "no-such-dir", "d.jsonl")
    code = main([source_file, "--promote", "--decisions-out", missing])
    captured = capsys.readouterr()
    assert code == 10
    assert "warning: cannot write decisions" in captured.err
