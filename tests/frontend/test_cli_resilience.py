"""CLI resilience surface: --timeout/--retries/--chaos validation, exit
code 3 for degraded-but-complete runs, and the exit-code precedence
(2 driver errors > 1 strict > 3 degraded > program return value)."""

import json

import pytest

from repro.frontend.cli import main
from repro.parallel.scheduler import SchedulerError

#: Two promotable functions so chaos can poison one while the other and
#: the program's behaviour survive.
PROGRAM = """
int total = 0;
int step(int k) {
    for (int i = 0; i < 5; i++) total += k;
    return total;
}
int main() {
    int r = step(2);
    print(r);
    return r;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


def test_chaos_crash_run_degrades_to_exit_3(source_file, capsys):
    code = main(
        [
            source_file,
            "--promote",
            "--jobs",
            "2",
            "--retries",
            "1",
            "--chaos",
            "crash=1.0,only=step,seed=1",
        ]
    )
    captured = capsys.readouterr()
    assert code == 3
    # The program still ran and printed the right answer.
    assert captured.out == "10\n"
    assert "repro-minic: degraded: 1 quarantined" in captured.err


def test_clean_resilient_run_keeps_the_program_exit_code(source_file, capsys):
    code = main([source_file, "--promote", "--jobs", "2", "--timeout", "60"])
    captured = capsys.readouterr()
    assert captured.out == "10\n"
    assert code == 10
    assert "degraded" not in captured.err


def test_degraded_emit_ir_exits_3(source_file, capsys):
    code = main(
        [
            source_file,
            "--promote",
            "--jobs",
            "2",
            "--retries",
            "1",
            "--chaos",
            "crash=1.0,only=step,seed=1",
            "--emit-ir",
        ]
    )
    captured = capsys.readouterr()
    assert code == 3
    assert "func @main" in captured.out


def test_strict_outranks_degraded(source_file, capsys):
    code = main(
        [
            source_file,
            "--promote",
            "--jobs",
            "2",
            "--retries",
            "1",
            "--chaos",
            "crash=1.0,only=step,seed=1",
            "--strict",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "repro-minic: strict:" in captured.err
    assert "1 quarantined" in captured.err


def test_resilience_flags_require_parallel_jobs(source_file, capsys):
    code = main([source_file, "--promote", "--chaos", "crash=0.1"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--jobs != 1" in captured.err
    assert captured.err.count("\n") == 1


def test_resilience_flags_require_promote(source_file, capsys):
    code = main([source_file, "--timeout", "5"])
    captured = capsys.readouterr()
    assert code == 2
    assert "require --promote" in captured.err


def test_bad_chaos_spec_exits_2(source_file, capsys):
    code = main([source_file, "--promote", "--jobs", "2", "--chaos", "frob=1"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown chaos spec key 'frob'" in captured.err


def test_bad_timeout_exits_2(source_file, capsys):
    code = main([source_file, "--promote", "--jobs", "2", "--timeout", "0"])
    captured = capsys.readouterr()
    assert code == 2
    assert "timeout_s must be > 0" in captured.err


def test_diagnostics_carry_attempt_histories_and_quarantine(
    source_file, tmp_path, capsys
):
    out = tmp_path / "diag.json"
    code = main(
        [
            source_file,
            "--promote",
            "--jobs",
            "2",
            "--retries",
            "1",
            "--chaos",
            "crash=1.0,only=step,seed=1",
            "--diagnostics",
            str(out),
        ]
    )
    capsys.readouterr()
    assert code == 3
    data = json.loads(out.read_text())
    assert data["resilience"]["quarantined"] == ["step"]
    assert data["resilience"]["worker_crashes"] == 2
    assert data["resilience"]["options"]["retries"] == 1
    assert data["attempt_histories"]["step"]["attempts"] == 2
    by_name = {entry["name"]: entry for entry in data["functions"]}
    assert by_name["step"]["status"] == "quarantined"
    assert by_name["step"]["attempts"] == 2


def test_parallel_fallback_is_printed_under_diagnostics(
    source_file, tmp_path, capsys, monkeypatch
):
    import repro.promotion.pipeline as pipeline_module

    def explode(*args, **kwargs):
        raise SchedulerError.wrap(
            RuntimeError("pool initializer died"), function="step"
        )

    monkeypatch.setattr(pipeline_module, "promote_functions_parallel", explode)
    out = tmp_path / "diag.json"
    code = main(
        [source_file, "--promote", "--jobs", "2", "--diagnostics", str(out)]
    )
    captured = capsys.readouterr()
    # The serial fallback completed the run; degraded exit, cause kept.
    assert code == 3
    assert (
        "repro-minic: parallel fallback: RuntimeError: pool initializer died"
        in captured.err
    )
    assert "in 'step'" in captured.err
    data = json.loads(out.read_text())
    assert data["fallback_reason"] == {
        "error_type": "RuntimeError",
        "detail": "pool initializer died",
        "function": "step",
    }
