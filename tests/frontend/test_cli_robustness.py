"""CLI failure handling: exit code 2 with one-line messages on driver
errors, the --max-steps budget, --diagnostics JSON dumps, and --strict."""

import json

import pytest

from repro.frontend.cli import main

PROGRAM = """
int total = 0;
int main() {
    for (int i = 0; i < 10; i++) total += i;
    print(total);
    return total;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


def test_missing_file_exits_2(tmp_path, capsys):
    code = main([str(tmp_path / "nope.c")])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("repro-minic: error: cannot read")
    assert captured.err.count("\n") == 1  # one line, no traceback


def test_parse_error_exits_2(tmp_path, capsys):
    path = tmp_path / "broken.c"
    path.write_text("int main( {")
    code = main([str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("repro-minic: error:")
    assert "broken.c" in captured.err


def test_sema_error_exits_2(tmp_path, capsys):
    path = tmp_path / "sema.c"
    path.write_text("int main() { return nope; }")
    code = main([str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("repro-minic: error:")


def test_max_steps_budget_exhaustion_exits_2(source_file, capsys):
    code = main([source_file, "--max-steps", "5"])
    captured = capsys.readouterr()
    assert code == 2
    assert "execution failed" in captured.err


def test_max_steps_generous_budget_runs_normally(source_file, capsys):
    code = main([source_file, "--max-steps", "100000"])
    assert capsys.readouterr().out == "45\n"
    assert code == 45


def test_diagnostics_flag_writes_json(source_file, tmp_path, capsys):
    out = tmp_path / "diag.json"
    code = main([source_file, "--promote", "--diagnostics", str(out)])
    assert capsys.readouterr().out == "45\n"
    assert code == 45
    data = json.loads(out.read_text())
    assert data["summary"].startswith("1 promoted")
    names = [entry["name"] for entry in data["functions"]]
    assert names == ["main"]


def test_diagnostics_without_pipeline_exits_2(source_file, tmp_path, capsys):
    code = main([source_file, "--diagnostics", str(tmp_path / "d.json")])
    captured = capsys.readouterr()
    assert code == 2
    assert "--diagnostics requires" in captured.err


def test_strict_passes_on_clean_run(source_file, capsys):
    code = main([source_file, "--promote", "--strict"])
    assert capsys.readouterr().out == "45\n"
    assert code == 45


def test_strict_fails_on_rollback(source_file, capsys, monkeypatch):
    import repro.promotion.pipeline as pipeline_module

    def explode(function, mssa, profile, tree, options):
        raise RuntimeError("promotion exploded")

    monkeypatch.setattr(pipeline_module, "promote_function", explode)
    code = main([source_file, "--promote", "--strict"])
    captured = capsys.readouterr()
    assert code == 1
    assert "repro-minic: strict:" in captured.err
    assert "1 rolled back" in captured.err
    # The program itself still ran correctly on the rolled-back IR.
    assert captured.out == "45\n"


def test_strict_with_emit_ir_reports_failure(source_file, capsys, monkeypatch):
    import repro.promotion.pipeline as pipeline_module

    def explode(function, mssa, profile, tree, options):
        raise RuntimeError("promotion exploded")

    monkeypatch.setattr(pipeline_module, "promote_function", explode)
    code = main([source_file, "--promote", "--strict", "--emit-ir"])
    captured = capsys.readouterr()
    assert code == 1
    assert "func @main" in captured.out
