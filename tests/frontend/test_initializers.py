"""Array initializer lists: parsing, semantics, round-trip, promotion."""

import pytest

from repro.frontend.errors import CompileError
from repro.frontend.lower import compile_source
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline


def test_global_array_initializer():
    src = """
    int A[5] = {10, 20, 30};
    int main() { print(A[0], A[2], A[4]); return 0; }
    """
    assert run_module(compile_source(src)).output == [(10, 30, 0)]


def test_local_array_initializer_fresh_per_activation():
    src = """
    int f(int set) {
        int buf[3] = {5, 6, 7};
        if (set) buf[0] = 100;
        return buf[0];
    }
    int main() { print(f(1), f(0)); return 0; }
    """
    assert run_module(compile_source(src)).output == [(100, 5)]


def test_empty_and_full_lists():
    src = """
    int A[2] = {};
    int B[2] = {8, 9};
    int main() { print(A[0], B[0], B[1]); return 0; }
    """
    assert run_module(compile_source(src)).output == [(0, 8, 9)]


def test_too_many_initializers_rejected():
    with pytest.raises(CompileError, match="initializers for an array"):
        compile_source("int A[2] = {1, 2, 3}; int main() { return 0; }")


def test_list_on_scalar_rejected():
    with pytest.raises(CompileError, match="requires an array"):
        compile_source("int x = {1}; int main() { return 0; }")


def test_ir_round_trip_with_lists():
    src = """
    int A[4] = {1, -2, 3};
    int main() {
        int buf[2] = {9};
        return A[1] + buf[0];
    }
    """
    module = compile_source(src)
    text1 = print_module(module, with_mem=False)
    assert "array @A[4] = {1, -2, 3}" in text1
    module2 = parse_module(text1)
    assert print_module(module2, with_mem=False) == text1
    assert run_module(module2).return_value == 7


def test_promotion_with_initialized_arrays():
    src = """
    int table[4] = {2, 4, 6, 8};
    int sum = 0;
    int main() {
        for (int i = 0; i < 100; i++) {
            sum += table[i % 4];
        }
        print(sum);
        return 0;
    }
    """
    baseline = run_module(compile_source(src))
    module = compile_source(src)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    assert run_module(module).output == baseline.output == [(500,)]
