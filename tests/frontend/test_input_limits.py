"""Untrusted-input resource limits on the frontend.

Hostile input must fail with a structured FrontendLimitError — never a
raw RecursionError or an OOM — and the CLI must report it as a driver
error (exit 2) like any other compile failure.
"""

import pytest

from repro.frontend.cli import main
from repro.frontend.errors import CompileError, FrontendLimitError
from repro.frontend.limits import DEFAULT_LIMITS, InputLimits
from repro.frontend.lower import compile_source

PROGRAM = """
int total = 0;
int main() {
    for (int i = 0; i < 10; i++) total += i;
    print(total);
    return total;
}
"""


def test_normal_program_passes_default_limits():
    module = compile_source(PROGRAM, limits=DEFAULT_LIMITS)
    assert module.functions


def test_oversized_source_rejected_before_lexing():
    limits = InputLimits(max_source_bytes=16)
    with pytest.raises(FrontendLimitError) as excinfo:
        compile_source(PROGRAM, limits=limits)
    err = excinfo.value
    assert err.limit == "source size"
    assert err.actual > err.maximum == 16
    assert "source size" in str(err)


def test_token_flood_rejected_mid_scan():
    limits = InputLimits(max_tokens=10)
    with pytest.raises(FrontendLimitError) as excinfo:
        compile_source(PROGRAM, limits=limits)
    err = excinfo.value
    assert err.limit == "token count"
    assert err.maximum == 10
    assert err.line >= 1


def test_deep_unary_chain_trips_the_default_depth_cap():
    # 300 stacked unary operators would recurse ~a dozen Python frames
    # per level in the parser; the cap must fire first.  ("!" rather
    # than "-": the lexer max-munches "--" into a different token.)
    deep = "int main() { return " + "!" * 300 + "1; }"
    with pytest.raises(FrontendLimitError) as excinfo:
        compile_source(deep)
    assert excinfo.value.limit == "nesting depth"


def test_custom_depth_cap_is_enforced():
    source = "int main() { return " + "!" * 20 + "1; }"
    compile_source(source)  # fine under the defaults
    with pytest.raises(FrontendLimitError):
        compile_source(source, limits=InputLimits(max_depth=5))


def test_limit_error_is_a_compile_error():
    # Existing `except CompileError` handlers must keep working.
    assert issubclass(FrontendLimitError, CompileError)


def test_limits_reject_nonpositive_caps():
    for field in ("max_source_bytes", "max_tokens", "max_depth"):
        with pytest.raises(ValueError):
            InputLimits(**{field: 0})


def test_limits_as_dict_round_trips():
    limits = InputLimits(max_source_bytes=10, max_tokens=20, max_depth=30)
    assert limits.as_dict() == {
        "max_source_bytes": 10,
        "max_tokens": 20,
        "max_depth": 30,
    }


def test_cli_reports_limit_trip_as_driver_error(tmp_path, capsys):
    path = tmp_path / "deep.c"
    path.write_text("int main() { return " + "!" * 300 + "1; }")
    code = main([str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "repro-minic: error" in captured.err
    assert "nesting depth" in captured.err
