"""Language corners: pointer parameters, dangling else, do-while with
continue, nested short-circuits, operator precedence torture."""

from repro.frontend.lower import compile_source
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline


def run(src, entry="main", args=()):
    module = compile_source(src)
    return run_module(module, entry=entry, args=list(args))


def both(src):
    baseline = run(src)
    module = compile_source(src)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    return baseline


def test_pointer_parameters_across_calls():
    src = """
    int a = 1;
    int b = 2;
    void swap(int *p, int *q) {
        int t = *p;
        *p = *q;
        *q = t;
    }
    int main() {
        swap(&a, &b);
        print(a, b);
        return 0;
    }
    """
    assert both(src).output == [(2, 1)]


def test_array_element_pointer_passed_to_callee():
    src = """
    int A[4];
    void bump(int *p, int by) { *p = *p + by; }
    int main() {
        A[2] = 10;
        bump(&A[2], 5);
        print(A[2]);
        return 0;
    }
    """
    assert both(src).output == [(15,)]


def test_pointer_returned_through_global_effects():
    src = """
    int x = 100;
    int read_through(int *p) { return *p; }
    int main() {
        int v = read_through(&x);
        x = 1;
        int w = read_through(&x);
        print(v, w);
        return 0;
    }
    """
    assert both(src).output == [(100, 1)]


def test_dangling_else_binds_to_nearest_if():
    src = """
    int main() {
        int r = 0;
        for (int a = 0; a < 2; a++) {
            for (int b = 0; b < 2; b++) {
                if (a)
                    if (b) r += 100;
                    else r += 10;
                else
                    r += 1;
            }
        }
        return r;  // a=0: 1+1; a=1: 10+100 => 112
    }
    """
    assert run(src).return_value == 112


def test_do_while_with_continue():
    src = """
    int main() {
        int i = 0;
        int taken = 0;
        do {
            i++;
            if (i % 2) continue;   // jumps to the condition
            taken++;
        } while (i < 7);
        print(i, taken);
        return 0;
    }
    """
    assert run(src).output == [(7, 3)]


def test_nested_short_circuit_evaluation_order():
    src = """
    int trace = 0;
    int probe(int id, int result) {
        trace = trace * 10 + id;
        return result;
    }
    int main() {
        int r = (probe(1, 1) && probe(2, 0)) || probe(3, 1);
        print(r, trace);
        return 0;
    }
    """
    assert both(src).output == [(1, 123)]


def test_short_circuit_skips_side_effects():
    src = """
    int calls = 0;
    int bump() { calls++; return 1; }
    int main() {
        int a = (0 && bump()) || (0 && bump());
        print(a, calls);
        return 0;
    }
    """
    assert run(src).output == [(0, 0)]


def test_precedence_torture():
    src = """
    int main() {
        // C precedence: shifts bind looser than +, & looser than ==,
        // ^ looser than &, | looser than ^.
        int a = 1 << 2 + 1;        // 1 << 3 = 8
        int b = 7 & 3 == 3;        // 7 & (3==3) = 1
        int c = 4 | 2 ^ 2;         // 4 | (2^2) = 4
        int d = -3 % 2;            // -1 (trunc toward zero)
        print(a, b, c, d);
        return 0;
    }
    """
    assert run(src).output == [(8, 1, 4, -1)]


def test_compound_shift_assignments():
    src = """
    int x = 1;
    int main() {
        x <<= 4;
        x >>= 1;
        x |= 1;
        x &= 6;
        x ^= 15;
        return x;   // 1<<4=16 >>1=8 |1=9 &6=0 ^15=15... wait: 9&6=0? 9=1001,6=0110 -> 0; 0^15=15
    }
    """
    assert run(src).return_value == 15


def test_unary_on_lvalue_loads_once():
    src = """
    int x = 5;
    int main() {
        int a = -x + ~x + !x;  // -5 + -6 + 0
        return a;
    }
    """
    assert run(src).return_value == -11


def test_return_inside_loop_flushes_global():
    src = """
    int steps = 0;
    int main() {
        for (int i = 0; i < 100; i++) {
            steps++;
            if (steps == 13) return steps;
        }
        return -1;
    }
    """
    baseline = run(src)
    module = compile_source(src)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    after = run_module(module)
    assert after.return_value == baseline.return_value == 13
    assert after.globals_snapshot()["steps"] == 13
