import pytest

from repro.frontend.errors import CompileError
from repro.frontend.lexer import tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


def test_numbers_and_identifiers():
    assert kinds("x1 42 _y") == [("ident", "x1"), ("num", "42"), ("ident", "_y")]


def test_keywords_recognized():
    assert kinds("int while foo") == [
        ("kw", "int"),
        ("kw", "while"),
        ("ident", "foo"),
    ]


def test_maximal_munch_operators():
    assert [t for _, t in kinds("a<<=b")] == ["a", "<<=", "b"]
    assert [t for _, t in kinds("a<=b")] == ["a", "<=", "b"]
    assert [t for _, t in kinds("a<b")] == ["a", "<", "b"]
    assert [t for _, t in kinds("a&&b&c")] == ["a", "&&", "b", "&", "c"]
    assert [t for _, t in kinds("i++ +2")] == ["i", "++", "+", "2"]


def test_comments_stripped():
    src = """
    int x; // line comment
    /* block
       comment */ int y;
    """
    assert ("ident", "y") in kinds(src)
    assert all(t != "comment" for _, t in kinds(src))


def test_line_numbers_tracked():
    toks = tokenize("a\nb\n\nc")
    lines = {t.text: t.line for t in toks if t.kind == "ident"}
    assert lines == {"a": 1, "b": 2, "c": 4}


def test_unterminated_comment_rejected():
    with pytest.raises(CompileError, match="unterminated"):
        tokenize("/* oops")


def test_bad_character_rejected():
    with pytest.raises(CompileError, match="unexpected character"):
        tokenize("int $x;")
