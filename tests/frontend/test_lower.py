"""Lowering tests: compile mini-C, execute, and check behaviour."""

from repro.frontend.lower import compile_source
from repro.ir.verify import verify_module
from repro.profile.interp import run_module


def run(src, entry="main", args=()):
    module = compile_source(src)
    verify_module(module)
    return run_module(module, entry=entry, args=list(args))


def test_arithmetic_and_return():
    result = run("int main() { return (2 + 3) * 4 - 6 / 2; }")
    assert result.return_value == 17


def test_globals_and_locals():
    result = run(
        """
        int g = 10;
        int main() {
            int x = 5;
            g = g + x;
            return g;
        }
        """
    )
    assert result.return_value == 15
    assert result.globals_snapshot()["g"] == 15


def test_params_are_assignable():
    result = run(
        """
        int f(int a) { a = a * 2; return a; }
        int main() { return f(21); }
        """
    )
    assert result.return_value == 42


def test_if_else_chain():
    src = """
    int classify(int n) {
        if (n < 0) return -1;
        else if (n == 0) return 0;
        else return 1;
    }
    int main() { print(classify(-5), classify(0), classify(7)); return 0; }
    """
    assert run(src).output == [(-1, 0, 1)]


def test_while_and_for_loops():
    result = run(
        """
        int main() {
            int total = 0;
            for (int i = 1; i <= 10; i++) total += i;
            int n = 0;
            while (total > 0) { total -= 10; n++; }
            return n;
        }
        """
    )
    assert result.return_value == 6


def test_do_while_runs_once():
    result = run("int main() { int i = 100; do { i++; } while (i < 0); return i; }")
    assert result.return_value == 101


def test_break_and_continue():
    result = run(
        """
        int main() {
            int evens = 0;
            for (int i = 0; i < 100; i++) {
                if (i >= 10) break;
                if (i % 2) continue;
                evens++;
            }
            return evens;
        }
        """
    )
    assert result.return_value == 5


def test_short_circuit_semantics():
    src = """
    int calls = 0;
    int bump() { calls++; return 1; }
    int main() {
        int a = 0 && bump();
        int b = 1 || bump();
        int c = 1 && bump();
        print(a, b, c, calls);
        return 0;
    }
    """
    assert run(src).output == [(0, 1, 1, 1)]


def test_pointers_and_arrays():
    src = """
    int x = 3;
    int A[5];
    int main() {
        int *p = &x;
        *p = 7;
        int i;
        for (i = 0; i < 5; i++) A[i] = i * i;
        int *q = &A[3];
        print(x, *q, A[4]);
        return 0;
    }
    """
    assert run(src).output == [(7, 9, 16)]


def test_struct_fields():
    src = """
    struct counter { int hits; int misses = 2; };
    int main() {
        counter.hits = 5;
        counter.hits += counter.misses;
        print(counter.hits, counter.misses);
        return 0;
    }
    """
    assert run(src).output == [(7, 2)]


def test_local_arrays():
    src = """
    int sum3(int a, int b, int c) {
        int buf[3];
        buf[0] = a; buf[1] = b; buf[2] = c;
        int s = 0;
        for (int i = 0; i < 3; i++) s += buf[i];
        return s;
    }
    int main() { return sum3(1, 2, 3); }
    """
    assert run(src).return_value == 6


def test_recursion():
    src = """
    int fib(int n) {
        if (n < 2) return n;
        return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(10); }
    """
    assert run(src).return_value == 55


def test_code_after_return_unreachable():
    result = run("int main() { return 1; print(99); }")
    assert result.return_value == 1
    assert result.output == []


def test_compound_assignment_through_pointer():
    src = """
    int x = 10;
    int main() {
        int *p = &x;
        *p = *p + 5;
        x <<= 1;
        return x;
    }
    """
    assert run(src).return_value == 30


def test_missing_return_defaults_zero():
    assert run("int main() { int x = 1; }").return_value == 0


def test_void_function():
    src = """
    int g = 0;
    void bump() { g++; }
    int main() { bump(); bump(); return g; }
    """
    assert run(src).return_value == 2
