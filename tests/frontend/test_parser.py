import pytest

from repro.frontend import cast as A
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse_program


def test_globals_and_arrays():
    program = parse_program("int x; int y = 5; int z = -3; int A[10];")
    assert [g.name for g in program.globals] == ["x", "y", "z", "A"]
    assert program.globals[1].init == 5
    assert program.globals[2].init == -3
    assert program.globals[3].array_size == 10


def test_struct_declaration():
    program = parse_program("struct s { int a; int b = 2; };")
    struct = program.structs[0]
    assert struct.name == "s"
    assert struct.fields == ["a", "b"]
    assert struct.inits == [0, 2]


def test_function_with_params():
    program = parse_program("int f(int a, int *p) { return a; }")
    func = program.functions[0]
    assert func.params == ["a", "p"]
    assert isinstance(func.body[0], A.Return)


def test_precedence():
    program = parse_program("int f() { return 1 + 2 * 3 < 4 && 5; }")
    ret = program.functions[0].body[0]
    sc = ret.value
    assert isinstance(sc, A.ShortCircuit) and sc.op == "&&"
    cmp = sc.lhs
    assert isinstance(cmp, A.Binary) and cmp.op == "lt"
    add = cmp.lhs
    assert isinstance(add, A.Binary) and add.op == "add"
    mul = add.rhs
    assert isinstance(mul, A.Binary) and mul.op == "mul"


def test_parenthesized_grouping():
    program = parse_program("int f() { return (1 + 2) * 3; }")
    mul = program.functions[0].body[0].value
    assert mul.op == "mul"
    assert mul.lhs.op == "add"


def test_unary_chain():
    program = parse_program("int f(int *p) { return -!*p; }")
    neg = program.functions[0].body[0].value
    assert neg.op == "neg"
    assert neg.operand.op == "not"
    assert isinstance(neg.operand.operand, A.Deref)


def test_assignment_forms():
    program = parse_program(
        """
        int x; int A[4];
        struct s { int f; };
        int main(int *p) {
            x = 1;
            x += 2;
            A[x] = 3;
            s.f <<= 1;
            *p = 4;
            x++;
            A[0]--;
            return 0;
        }
        """
    )
    body = program.functions[0].body
    assert isinstance(body[0], A.Assign) and body[0].op == ""
    assert isinstance(body[1], A.Assign) and body[1].op == "+"
    assert isinstance(body[2], A.Assign) and isinstance(body[2].target, A.Index)
    assert isinstance(body[3], A.Assign) and body[3].op == "<<"
    assert isinstance(body[4], A.Assign) and isinstance(body[4].target, A.Deref)
    assert isinstance(body[5], A.IncDec) and body[5].op == "++"
    assert isinstance(body[6], A.IncDec) and body[6].op == "--"


def test_control_flow_forms():
    program = parse_program(
        """
        int main() {
            int i;
            if (i) i = 1; else { i = 2; }
            while (i < 3) i++;
            do { i--; } while (i);
            for (i = 0; i < 4; i++) { if (i == 2) break; else continue; }
            for (;;) { break; }
            return i;
        }
        """
    )
    body = program.functions[0].body
    assert isinstance(body[1], A.If) and body[1].else_body
    assert isinstance(body[2], A.While)
    assert isinstance(body[3], A.DoWhile)
    assert isinstance(body[4], A.For) and body[4].step is not None
    empty_for = body[5]
    assert empty_for.init is None and empty_for.cond is None and empty_for.step is None


def test_for_with_decl_init():
    program = parse_program("int main() { for (int i = 0; i < 3; i++) { } return 0; }")
    loop = program.functions[0].body[0]
    assert isinstance(loop.init, A.LocalDecl)


def test_addr_of_targets():
    program = parse_program(
        """
        int x; int A[4];
        struct s { int f; };
        int main() {
            int *p;
            p = &x;
            p = &A[1];
            p = &s.f;
            return *p;
        }
        """
    )
    body = program.functions[0].body
    assert isinstance(body[1].value, A.AddrOfExpr)
    assert isinstance(body[2].value.target, A.Index)
    assert isinstance(body[3].value.target, A.FieldRef)


def test_call_statement_and_expr():
    program = parse_program(
        """
        int g(int a) { return a; }
        int main() { g(1); return g(2) + g(3); }
        """
    )
    body = program.functions[1].body
    assert isinstance(body[0], A.ExprStmt)
    assert isinstance(body[0].expr, A.CallExpr)


def test_syntax_errors():
    with pytest.raises(CompileError, match="expected"):
        parse_program("int main( { }")
    with pytest.raises(CompileError, match="lvalue"):
        parse_program("int main() { 1 = 2; }")
    with pytest.raises(CompileError, match="& requires"):
        parse_program("int main() { int x; int *p; p = &(x + 1); }")
    with pytest.raises(CompileError, match="no fields"):
        parse_program("struct s { };")
    with pytest.raises(CompileError, match="unexpected token"):
        parse_program("float x;")
