"""Direct unit tests for the block-scope resolver (alpha renaming)."""

import pytest

from repro.frontend import cast as A
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse_program
from repro.frontend.scopes import resolve_scopes


def _main_body(src):
    program = parse_program(src)
    resolve_scopes(program)
    return program.functions[-1].body


def _decl_names(body, acc=None):
    acc = acc if acc is not None else []
    for stmt in body:
        if isinstance(stmt, A.LocalDecl):
            acc.append(stmt.name)
        elif isinstance(stmt, A.If):
            _decl_names(stmt.then_body, acc)
            _decl_names(stmt.else_body, acc)
        elif isinstance(stmt, (A.While, A.DoWhile)):
            _decl_names(stmt.body, acc)
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                _decl_names([stmt.init], acc)
            _decl_names(stmt.body, acc)
    return acc


def test_sibling_for_loops_renamed_apart():
    body = _main_body(
        """
        int main() {
            for (int i = 0; i < 2; i++) { }
            for (int i = 0; i < 2; i++) { }
            return 0;
        }
        """
    )
    names = _decl_names(body)
    assert len(names) == 2
    assert len(set(names)) == 2
    assert names[0] == "i"
    assert names[1].startswith("i.")


def test_shadowing_renamed_and_references_bound():
    program = parse_program(
        """
        int main() {
            int x = 1;
            if (x) {
                int x = 2;
                x++;
            }
            return x;
        }
        """
    )
    resolve_scopes(program)
    body = program.functions[0].body
    outer = body[0]
    inner = body[1].then_body[0]
    assert outer.name == "x"
    assert inner.name != "x"
    incdec = body[1].then_body[1]
    assert incdec.target.ident == inner.name  # inner ++ binds to inner x
    ret = body[2]
    assert ret.value.ident == "x"  # return binds to outer x


def test_global_shadow_renames_local_not_global():
    program = parse_program("int g = 1; int main() { int g = 2; return g; }")
    resolve_scopes(program)
    decl = program.functions[0].body[0]
    assert decl.name.startswith("g.")
    ret = program.functions[0].body[1]
    assert ret.value.ident == decl.name


def test_same_scope_duplicate_rejected():
    program = parse_program("int main() { int a; int a; return 0; }")
    with pytest.raises(CompileError, match="duplicate local"):
        resolve_scopes(program)


def test_param_redeclaration_rejected():
    program = parse_program("int f(int a) { int a; return 0; }")
    with pytest.raises(CompileError, match="duplicate local"):
        resolve_scopes(program)


def test_local_array_subscripts_rebound():
    program = parse_program(
        """
        int buf[4];
        int main() {
            int buf[2];
            buf[0] = 9;
            return buf[0];
        }
        """
    )
    resolve_scopes(program)
    body = program.functions[0].body
    local_name = body[0].name
    assert local_name.startswith("buf")
    assert body[1].target.array == local_name
    assert body[2].value.array == local_name


def test_for_init_scopes_over_cond_and_step():
    program = parse_program(
        """
        int main() {
            int i = 100;
            for (int i = 0; i < 3; i++) { }
            return i;
        }
        """
    )
    resolve_scopes(program)
    loop = program.functions[0].body[1]
    inner = loop.init.name
    assert inner != "i"
    assert loop.cond.lhs.ident == inner
    assert loop.step.target.ident == inner
    assert program.functions[0].body[2].value.ident == "i"
