import pytest

from repro.frontend.errors import CompileError
from repro.frontend.parser import parse_program
from repro.frontend.sema import analyze


def check(src):
    return analyze(parse_program(src))


def test_valid_program():
    info = check(
        """
        int x; int A[4];
        struct s { int f; };
        int helper(int a) { return a + x; }
        int main() {
            int y = helper(2);
            A[0] = y;
            s.f = A[0];
            return s.f;
        }
        """
    )
    assert set(info.functions) == {"helper", "main"}
    assert info.is_global_array("A")
    assert not info.is_global_array("x")


def test_duplicate_global():
    with pytest.raises(CompileError, match="duplicate global"):
        check("int x; int x;")


def test_duplicate_function():
    with pytest.raises(CompileError, match="duplicate function"):
        check("int f() { return 0; } int f() { return 1; }")


def test_duplicate_local_and_param():
    with pytest.raises(CompileError, match="duplicate local"):
        check("int f() { int a; int a; return 0; }")
    with pytest.raises(CompileError, match="duplicate local"):
        check("int f(int a) { int a; return 0; }")
    with pytest.raises(CompileError, match="duplicate parameter"):
        check("int f(int a, int a) { return 0; }")


def test_undeclared_variable():
    with pytest.raises(CompileError, match="undeclared variable"):
        check("int main() { return nope; }")


def test_array_used_without_subscript():
    with pytest.raises(CompileError, match="without subscript"):
        check("int A[3]; int main() { return A; }")


def test_subscript_on_non_array():
    with pytest.raises(CompileError, match="is not an array"):
        check("int x; int main() { return x[0]; }")


def test_unknown_struct_or_field():
    with pytest.raises(CompileError, match="unknown struct"):
        check("int main() { return s.f; }")
    with pytest.raises(CompileError, match="has no field"):
        check("struct s { int a; }; int main() { return s.b; }")


def test_call_checks():
    with pytest.raises(CompileError, match="undeclared function"):
        check("int main() { return missing(); }")
    with pytest.raises(CompileError, match="expects 2 arguments"):
        check("int f(int a, int b) { return a; } int main() { return f(1); }")


def test_break_outside_loop():
    with pytest.raises(CompileError, match="break outside"):
        check("int main() { break; return 0; }")
    with pytest.raises(CompileError, match="continue outside"):
        check("int main() { continue; return 0; }")


def test_address_of_pointer_rejected():
    with pytest.raises(CompileError, match="address of a pointer"):
        check("int main() { int *p; int x; p = &x; return *(&p); }")


def test_locals_shadow_globals():
    # The scope resolver renames the shadowing local; the global keeps
    # its name and the local reference binds to the renamed slot.
    info = check("int x = 9; int main() { int x = 1; return x; }")
    locals_ = info.functions["main"].locals
    assert any(name == "x" or name.startswith("x.") for name in locals_)

    from repro.frontend.lower import compile_source
    from repro.profile.interp import run_module

    module = compile_source("int x = 9; int main() { int x = 1; return x; }")
    result = run_module(module)
    assert result.return_value == 1
    assert result.globals_snapshot()["x"] == 9


def test_sibling_scopes_reuse_names():
    from repro.frontend.lower import compile_source
    from repro.profile.interp import run_module

    module = compile_source(
        """
        int main() {
            int total = 0;
            for (int i = 0; i < 3; i++) total += i;
            for (int i = 0; i < 4; i++) total += i * 10;
            if (total > 0) { int t = total * 2; total = t; }
            return total;
        }
        """
    )
    assert run_module(module).return_value == (0 + 1 + 2 + 60) * 2


def test_inner_scope_shadows_outer_local():
    from repro.frontend.lower import compile_source
    from repro.profile.interp import run_module

    module = compile_source(
        """
        int main() {
            int x = 5;
            if (x > 0) {
                int x = 100;
                x++;
                print(x);
            }
            return x;
        }
        """
    )
    result = run_module(module)
    assert result.output == [(101,)]
    assert result.return_value == 5


def test_initializer_sees_outer_binding():
    from repro.frontend.lower import compile_source
    from repro.profile.interp import run_module

    module = compile_source(
        """
        int main() {
            int x = 7;
            if (x) {
                int x = x + 1;  // outer x, as in "int x = x" reading outer
                return x;
            }
            return 0;
        }
        """
    )
    assert run_module(module).return_value == 8
