import pytest

from repro.ir import instructions as I
from repro.ir.values import Const
from repro.memory.resources import VarKind

from tests.support import diamond, empty_function


def test_append_terminator_updates_preds():
    _, func, b = empty_function()
    b1 = func.add_block("b1")
    b2 = func.add_block("b2")
    b.at(b1).jump(b2)
    assert b2.preds == [b1]
    assert b1.succs == [b2]


def test_append_after_terminator_fails():
    _, func, b = empty_function()
    b1 = func.add_block("b1")
    b.at(b1).ret(0)
    with pytest.raises(ValueError):
        b1.append(I.Copy(func.new_reg(), Const(1)))


def test_set_terminator_replaces_and_rewires():
    _, func, b = empty_function()
    b1, b2, b3 = func.add_block("b1"), func.add_block("b2"), func.add_block("b3")
    b.at(b1).jump(b2)
    b1.set_terminator(I.Jump(b3))
    assert b2.preds == []
    assert b3.preds == [b1]


def test_condbr_same_target_dedups_pred():
    _, func, b = empty_function()
    b1, b2 = func.add_block("b1"), func.add_block("b2")
    b.at(b1).cond_br(1, b2, b2)
    assert b2.preds == [b1]
    assert b1.succs == [b2]


def test_retarget_updates_edges():
    _, func, b = empty_function()
    b1, b2, b3 = func.add_block("b1"), func.add_block("b2"), func.add_block("b3")
    b.at(b1).cond_br(1, b2, b3)
    b1.retarget(b2, b3)
    assert b2.preds == []
    assert b3.preds == [b1]
    assert b1.succs == [b3]


def test_insert_helpers_preserve_order():
    _, func, b = empty_function()
    b1 = func.add_block("b1")
    c1 = b1.append(I.Copy(func.new_reg(), Const(1)))
    c3 = b1.append(I.Copy(func.new_reg(), Const(3)))
    c2 = I.Copy(func.new_reg(), Const(2))
    b1.insert_before(c2, c3)
    c0 = I.Copy(func.new_reg(), Const(0))
    b1.insert_after(c0, c1)
    values = [inst.src.value for inst in b1.instructions]
    assert values == [1, 0, 2, 3]


def test_insert_at_front_respects_phis():
    _, func, b = empty_function()
    b0, b1 = func.add_block("b0"), func.add_block("b1")
    b.at(b0).jump(b1)
    phi = I.Phi(func.new_reg(), [(b0, Const(1))])
    b1.insert_at_front(phi)
    copy = I.Copy(func.new_reg(), Const(2))
    b1.insert_at_front(copy)
    assert b1.instructions[0] is phi
    assert b1.instructions[1] is copy


def test_insert_before_terminator():
    _, func, b = empty_function()
    b1 = func.add_block("b1")
    b.at(b1).ret()
    copy = I.Copy(func.new_reg(), Const(1))
    b1.insert_before_terminator(copy)
    assert b1.instructions[0] is copy
    assert b1.terminator is not copy


def test_phis_and_memphis_iterators():
    module, func = diamond()
    join = func.find_block("join")
    assert list(join.phis()) == []
    left = func.find_block("left")
    phi = I.Phi(func.new_reg(), [(func.find_block("entry"), Const(1))])
    # Insert into join to exercise the iterator.
    join.insert_at_front(phi)
    assert list(join.phis()) == [phi]


def test_function_naming_is_unique():
    _, func, _ = empty_function()
    regs = {func.new_reg().name for _ in range(100)}
    assert len(regs) == 100
    blocks = {func.new_block().name for _ in range(10)}
    assert len(blocks) == 10


def test_duplicate_block_name_rejected():
    _, func, _ = empty_function()
    func.add_block("b1")
    with pytest.raises(ValueError):
        func.add_block("b1")


def test_frame_vars():
    _, func, _ = empty_function()
    v = func.add_frame_var("y", VarKind.LOCAL, initial=5)
    assert func.frame_vars["y"] is v
    with pytest.raises(ValueError):
        func.add_frame_var("y")


def test_new_mem_name_versions_monotonic():
    module, func = diamond()
    x = module.get_global("x")
    n1 = func.new_mem_name(x)
    n2 = func.new_mem_name(x)
    assert (n1.version, n2.version) == (1, 2)
    assert not n1.is_entry


def test_remove_block_cleans_edges_and_phis():
    _, func, b = empty_function()
    b1, b2, b3 = func.add_block("b1"), func.add_block("b2"), func.add_block("b3")
    b.at(b1).cond_br(1, b2, b3)
    b.at(b2).jump(b3)
    phi = I.Phi(func.new_reg(), [(b1, Const(1)), (b2, Const(2))])
    b3.insert_at_front(phi)
    b.at(b3).ret()
    func.remove_block(b2)
    assert b2 not in b3.preds
    assert [blk.name for blk, _ in phi.incoming] == ["b1"]


def test_module_globals_and_fields():
    module, _ = diamond()
    module.add_field("s", "count", initial=3)
    assert module.get_global("s.count").kind is VarKind.FIELD
    assert [v.name for v in module.scalar_globals()] == ["x", "s.count"]
    module.add_global_array("A", 8)
    assert module.get_global("A").size == 8
    assert "A" not in [v.name for v in module.scalar_globals()]
    with pytest.raises(ValueError):
        module.add_global("x")
