"""Direct IRBuilder unit tests (beyond its pervasive indirect use)."""


from repro.ir import instructions as I
from repro.ir.builder import IRBuilder, as_value
from repro.ir.values import Const, VReg
from repro.profile.interp import run_module
from repro.ir.verify import verify_function

from tests.support import empty_function


def test_as_value_coercion():
    assert as_value(5) == Const(5)
    reg = VReg("t")
    assert as_value(reg) is reg


def test_binop_wrappers():
    module, func, b = empty_function()
    block = func.add_block("entry")
    b.at(block)
    ops = [
        b.add(1, 2),
        b.sub(5, 3),
        b.mul(2, 2),
        b.div(9, 3),
        b.lt(1, 2),
        b.le(2, 2),
        b.eq(3, 3),
        b.ne(3, 4),
    ]
    b.ret(ops[-1])
    kinds = [i.op for i in block.instructions if isinstance(i, I.BinOp)]
    assert kinds == ["add", "sub", "mul", "div", "lt", "le", "eq", "ne"]
    verify_function(func, check_ssa=True)


def test_unop_and_copy():
    module, func, b = empty_function()
    block = func.add_block("entry")
    b.at(block)
    n = b.unop("neg", 7)
    c = b.copy(n)
    b.ret(c)
    assert run_module(module, entry="f").return_value == -7


def test_memory_helpers():
    module, func, b = empty_function()
    x = module.add_global("x", initial=3)
    arr = module.add_global_array("A", 4)
    block = func.add_block("entry")
    b.at(block)
    t = b.load(x)
    b.store(x, b.add(t, 1))
    p = b.addr_of(x)
    b.ptr_store(p, 10)
    v = b.ptr_load(p)
    q = b.elem(arr, 2)
    b.array_store(arr, 0, v)
    u = b.array_load(arr, 0)
    b.print_(u)
    b.ret(u)
    result = run_module(module, entry="f")
    assert result.return_value == 10
    assert result.globals_snapshot()["x"] == 10


def test_call_with_and_without_value():
    module, func, b = empty_function("main")
    block = func.add_block("entry")
    b.at(block)
    helper = module.new_function("helper", ["a"])
    hb = IRBuilder(helper)
    hblock = helper.add_block("entry")
    hb.at(hblock)
    hb.ret(hb.mul(helper.params[0], 3))

    r = b.call("helper", [7])
    none = b.call("helper", [0], want_value=False)
    assert none is None
    b.ret(r)
    assert run_module(module).return_value == 21


def test_phi_builder_places_at_front():
    module, func, b = empty_function()
    e = func.add_block("entry")
    l = func.add_block("l")
    r = func.add_block("r")
    j = func.add_block("j")
    b.at(e).cond_br(1, l, r)
    b.at(l).jump(j)
    b.at(r).jump(j)
    b.at(j)
    marker = b.copy(0)
    v = b.phi([(l, 1), (r, 2)])
    b.ret(v)
    assert isinstance(j.instructions[0], I.Phi)
    verify_function(func, check_ssa=True)
    assert run_module(module, entry="f").return_value == 1


def test_terminators_via_builder():
    module, func, b = empty_function()
    e = func.add_block("entry")
    out = func.add_block("out")
    b.at(e).jump(out)
    b.at(out).ret()
    assert isinstance(e.terminator, I.Jump)
    assert isinstance(out.terminator, I.Ret)
    assert run_module(module, entry="f").return_value == 0
