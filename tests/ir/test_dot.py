from repro.analysis.intervals import IntervalTree
from repro.ir.dot import function_to_dot, module_to_dot
from repro.profile.interp import run_module
from repro.profile.profiles import ProfileData

from tests.support import nested_loops, simple_loop


def test_basic_structure():
    module, func = simple_loop()
    dot = function_to_dot(func)
    assert dot.startswith('digraph "loop"')
    for block in func.blocks:
        assert f'"{block.name}"' in dot
    assert '"header" -> "body"' in dot
    assert '"body" -> "header"' in dot
    assert dot.rstrip().endswith("}")


def test_profile_annotation():
    module, func = simple_loop(trip_count=3)
    profile = ProfileData.from_execution(run_module(module, entry="loop"))
    dot = function_to_dot(func, profile=profile)
    assert "(freq 3)" in dot  # the body
    assert "(freq 4)" in dot  # the header


def test_interval_clusters_and_back_edges():
    module, func = nested_loops()
    tree = IntervalTree.compute(func)
    dot = function_to_dot(func, intervals=tree)
    assert 'subgraph "cluster_oh"' in dot
    assert 'subgraph "cluster_ih"' in dot
    assert "back" in dot  # dashed back edges labeled
    # Every block appears exactly once as a node definition.
    for block in func.blocks:
        assert dot.count(f'"{block.name}" [label=') == 1


def test_escaping():
    module, func = simple_loop()
    dot = function_to_dot(func)
    # Instruction text contains '<' nowhere, but phis print brackets;
    # braces and pipes must be escaped inside record labels.
    assert "\\{" not in dot or "{" in dot  # smoke: no crash, valid-ish
    assert "%i = phi" in dot or "phi" in dot


def test_module_to_dot_covers_all_functions():
    module, func = simple_loop()
    module.new_function("empty").add_block("entry").append(
        __import__("repro.ir.instructions", fromlist=["Ret"]).Ret()
    )
    text = module_to_dot(module)
    assert 'digraph "loop"' in text
    assert 'digraph "empty"' in text
