import pytest

from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.values import Const, VReg
from repro.memory.resources import MemName, MemoryVar, VarKind


def test_binop_rejects_unknown_op():
    with pytest.raises(ValueError):
        I.BinOp(VReg("t"), "pow", Const(1), Const(2))


def test_unop_rejects_unknown_op():
    with pytest.raises(ValueError):
        I.UnOp(VReg("t"), "sqrt", Const(1))


def test_replace_operand_counts_and_replaces():
    a, b = VReg("a"), VReg("b")
    inst = I.BinOp(VReg("t"), "add", a, a)
    assert inst.replace_operand(a, b) == 2
    assert inst.lhs is b and inst.rhs is b


def test_phi_incoming_manipulation():
    b1, b2 = BasicBlock("b1"), BasicBlock("b2")
    v1, v2 = Const(1), Const(2)
    phi = I.Phi(VReg("t"), [(b1, v1), (b2, v2)])
    assert phi.value_for(b1) is v1
    phi.set_incoming(b1, v2)
    assert phi.value_for(b1) is v2
    phi.remove_incoming(b2)
    assert len(phi.incoming) == 1
    assert phi.operands == [v2]
    with pytest.raises(KeyError):
        phi.value_for(b2)


def test_phi_replace_operand_syncs_incoming():
    b1 = BasicBlock("b1")
    a, b = VReg("a"), VReg("b")
    phi = I.Phi(VReg("t"), [(b1, a)])
    assert phi.replace_operand(a, b) == 1
    assert phi.value_for(b1) is b
    assert phi.operands == [b]


def test_memphi_tracks_names_and_uses():
    x = MemoryVar("x")
    b1, b2 = BasicBlock("b1"), BasicBlock("b2")
    n0, n1, n2 = MemName(x, 0), MemName(x, 1), MemName(x, 2)
    phi = I.MemPhi(x, n2, [(b1, n0), (b2, n1)])
    assert phi.dst_name is n2
    assert n2.def_inst is phi
    assert phi.mem_uses == [n0, n1]
    assert phi.name_for(b2) is n1
    n3 = MemName(x, 3)
    assert phi.replace_mem_use(n1, n3) == 1
    assert phi.mem_uses == [n0, n3]


def test_singleton_ops_reject_aggregates():
    arr = MemoryVar("A", VarKind.ARRAY, size=4)
    with pytest.raises(ValueError):
        I.Load(VReg("t"), arr)
    with pytest.raises(ValueError):
        I.Store(arr, Const(0))


def test_addrof_marks_address_taken():
    x = MemoryVar("x")
    assert not x.address_taken
    I.AddrOf(VReg("p"), x)
    assert x.address_taken


def test_aliased_classification():
    x = MemoryVar("x")
    assert I.Call(None, "f", []).is_aliased_mem_op
    assert I.PtrLoad(VReg("t"), VReg("p")).is_aliased_mem_op
    assert I.PtrStore(VReg("p"), Const(0)).is_aliased_mem_op
    assert I.DummyAliasedLoad(MemName(x, 0)).is_aliased_mem_op
    assert not I.Load(VReg("t"), x).is_aliased_mem_op
    assert not I.Store(x, Const(0)).is_aliased_mem_op


def test_side_effects_classification():
    x = MemoryVar("x")
    assert I.Store(x, Const(1)).has_side_effects
    assert I.Call(None, "f", []).has_side_effects
    assert I.Print([Const(1)]).has_side_effects
    assert not I.BinOp(VReg("t"), "add", Const(1), Const(2)).has_side_effects
    assert not I.Load(VReg("t"), x).has_side_effects


def test_terminator_classification():
    b = BasicBlock("b")
    assert I.Jump(b).is_terminator
    assert I.CondBr(Const(1), b, b).is_terminator
    assert I.Ret().is_terminator
    assert not I.Copy(VReg("t"), Const(1)).is_terminator


def test_ret_value_accessor():
    assert I.Ret().value is None
    assert I.Ret(Const(3)).value == Const(3)
