"""format_instruction coverage for every instruction class."""

import pytest

from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.printer import format_instruction
from repro.ir.values import Const, VReg
from repro.memory.resources import MemName, MemoryVar, VarKind


@pytest.fixture
def env():
    x = MemoryVar("x")
    arr = MemoryVar("A", VarKind.ARRAY, size=4)
    b1, b2 = BasicBlock("b1"), BasicBlock("b2")
    return x, arr, b1, b2


def test_arith_formats(env):
    t, a = VReg("t"), VReg("a")
    assert format_instruction(I.Copy(t, a)) == "%t = copy %a"
    assert format_instruction(I.BinOp(t, "add", a, Const(2))) == "%t = add %a, 2"
    assert format_instruction(I.UnOp(t, "neg", a)) == "%t = neg %a"


def test_phi_formats(env):
    x, arr, b1, b2 = env
    t = VReg("t")
    phi = I.Phi(t, [(b1, Const(1)), (b2, VReg("v"))])
    assert format_instruction(phi) == "%t = phi [b1: 1, b2: %v]"
    n0, n1, n2 = MemName(x, 0), MemName(x, 1), MemName(x, 2)
    mphi = I.MemPhi(x, n2, [(b1, n0), (b2, n1)])
    assert format_instruction(mphi) == "x_2 = memphi @x [b1: x_0, b2: x_1]"


def test_memory_formats(env):
    x, arr, b1, b2 = env
    t = VReg("t")
    load = I.Load(t, x)
    assert format_instruction(load) == "%t = ld @x"
    load.mem_uses = [MemName(x, 3)]
    assert format_instruction(load) == "%t = ld @x[x_3]"
    store = I.Store(x, Const(5))
    assert format_instruction(store) == "st @x, 5"
    store.mem_defs = [MemName(x, 4)]
    assert format_instruction(store) == "st @x[x_4], 5"


def test_pointer_and_array_formats(env):
    x, arr, b1, b2 = env
    t, p = VReg("t"), VReg("p")
    assert format_instruction(I.AddrOf(p, x)) == "%p = addr @x"
    assert format_instruction(I.Elem(p, arr, Const(2))) == "%p = elem @A, 2"
    assert format_instruction(I.PtrLoad(t, p)) == "%t = ldp %p"
    assert format_instruction(I.PtrStore(p, Const(1))) == "stp %p, 1"
    assert format_instruction(I.ArrayLoad(t, arr, Const(0))) == "%t = lda @A, 0"
    assert format_instruction(I.ArrayStore(arr, Const(0), t)) == "sta @A, 0, %t"


def test_call_formats_with_mem_annotations(env):
    x, arr, b1, b2 = env
    r = VReg("r")
    call = I.Call(r, "f", [Const(1), VReg("a")])
    assert format_instruction(call) == "%r = call @f(1, %a)"
    call.mem_uses = [MemName(x, 1)]
    call.mem_defs = [MemName(x, 2)]
    assert format_instruction(call) == "%r = call @f(1, %a)  ; use x_1 | def x_2"
    assert format_instruction(call, with_mem=False) == "%r = call @f(1, %a)"
    void_call = I.Call(None, "g", [])
    assert format_instruction(void_call) == "call @g()"


def test_dummy_and_print_formats(env):
    x, arr, b1, b2 = env
    dummy = I.DummyAliasedLoad(MemName(x, 5))
    assert format_instruction(dummy) == "dummyload [x_5]"
    pr = I.Print([Const(1), VReg("v")])
    assert format_instruction(pr) == "print 1, %v"


def test_terminator_formats(env):
    x, arr, b1, b2 = env
    assert format_instruction(I.Jump(b1)) == "jmp b1"
    assert format_instruction(I.CondBr(VReg("c"), b1, b2)) == "br %c, b1, b2"
    assert format_instruction(I.Ret()) == "ret"
    assert format_instruction(I.Ret(Const(3))) == "ret 3"
    ret = I.Ret()
    ret.mem_uses = [MemName(x, 1)]
    assert format_instruction(ret) == "ret  ; use x_1"
