import pytest

from repro.ir.parser import IRParseError, parse_module
from repro.ir.printer import print_function, print_module
from repro.ir.verify import verify_module

from tests.support import diamond, nested_loops, simple_loop

FULL_PROGRAM = """\
module demo
global @x = 3
global @s.f = 0
array @A[16] = 0

func @helper(%a, %b) {
b0:
  %t1 = add %a, %b
  ret %t1
}

func @main() {
  local @y = 0
  local @buf[4] = 9
entry:
  %t1 = ld @x
  %t2 = mul %t1, 2
  st @x, %t2
  %p = addr @y
  stp %p, 5
  %t3 = ldp %p
  %q = elem @A, 3
  sta @A, 0, %t3
  %t4 = lda @A, 0
  %r = call @helper(%t4, 1)
  call @helper(0, 0)
  print %r, %t4
  %c = lt %r, 10
  br %c, then, els
then:
  %n = neg %r
  jmp done
els:
  %m = copy %r
  jmp done
done:
  %v = phi [then: %n, els: %m]
  st @s.f, %v
  ret %v
}
"""


def test_round_trip_full_program():
    module = parse_module(FULL_PROGRAM)
    verify_module(module)
    text1 = print_module(module, with_mem=False)
    module2 = parse_module(text1)
    verify_module(module2)
    text2 = print_module(module2, with_mem=False)
    assert text1 == text2


def test_round_trip_preserves_structure():
    module = parse_module(FULL_PROGRAM)
    main = module.get_function("main")
    assert [b.name for b in main.blocks] == ["entry", "then", "els", "done"]
    assert main.frame_vars["y"].initial == 0
    assert main.frame_vars["buf"].size == 4
    assert module.get_global("x").initial == 3
    assert module.get_global("s.f").name == "s.f"


def test_parse_phi_forward_reference():
    module, func = simple_loop()
    verify_module(module, check_ssa=True)
    header = func.find_block("header")
    phi = next(header.phis())
    blocks = sorted(b.name for b, _ in phi.incoming)
    assert blocks == ["body", "entry"]


def test_helpers_verify():
    for factory in (diamond, simple_loop, nested_loops):
        module, _ = factory()
        verify_module(module, check_ssa=True)


def test_printer_includes_preds_comment():
    module, func = diamond()
    text = print_function(func)
    assert "; preds: entry" in text


def test_parse_errors():
    with pytest.raises(IRParseError):
        parse_module("global @x = 0\nbogus line")
    with pytest.raises(IRParseError):
        parse_module("func @f() {\nentry:\n  %t = frobnicate 1\n  ret\n}")
    with pytest.raises(IRParseError):
        parse_module("func @f() {\nentry:\n  %t = ld @nosuch\n  ret\n}")
    with pytest.raises(IRParseError):
        parse_module("func @f() {\nentry:\n  ret\n")  # unterminated


def test_parse_instruction_before_label_rejected():
    with pytest.raises(IRParseError):
        parse_module("func @f() {\n  %t = copy 1\nentry:\n  ret\n}")


def test_comments_and_blank_lines_ignored():
    module = parse_module(
        """
        ; leading comment
        module m
        global @x = 0   ; trailing

        func @f() {
        entry:          ; preds: none
          %t = ld @x    ; use x_0
          ret %t
        }
        """
    )
    assert module.get_function("f") is not None
