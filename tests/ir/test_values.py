from repro.ir.values import UNDEF, Const, Undef, VReg


def test_const_equality_and_hash():
    assert Const(3) == Const(3)
    assert Const(3) != Const(4)
    assert hash(Const(3)) == hash(Const(3))
    assert str(Const(-7)) == "-7"


def test_const_coerces_to_int():
    assert Const(True).value == 1


def test_undef_singleton_semantics():
    assert Undef() == UNDEF
    assert str(UNDEF) == "undef"


def test_vreg_identity_not_name_equality():
    a, b = VReg("t1"), VReg("t1")
    assert a != b  # identity semantics
    assert str(a) == "%t1"


def test_vreg_def_inst_backref():
    from repro.ir.instructions import Copy

    dst = VReg("t1")
    inst = Copy(dst, Const(1))
    assert dst.def_inst is inst
