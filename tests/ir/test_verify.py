import pytest

from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.ir.values import Const, VReg
from repro.ir.verify import VerificationError, verify_function, verify_module

from tests.support import diamond, empty_function, simple_loop


def test_accepts_valid_function():
    module, func = diamond()
    verify_function(func, check_ssa=True)


def test_missing_terminator_rejected():
    _, func, b = empty_function()
    func.add_block("b1")
    with pytest.raises(VerificationError, match="lacks a terminator"):
        verify_function(func)


def test_entry_with_preds_rejected():
    _, func, b = empty_function()
    b1 = func.add_block("b1")
    b2 = func.add_block("b2")
    b.at(b1).jump(b2)
    b.at(b2).jump(b1)  # back into entry
    with pytest.raises(VerificationError, match="entry block has predecessors"):
        verify_function(func)


def test_stale_pred_edge_rejected():
    _, func, b = empty_function()
    b1, b2 = func.add_block("b1"), func.add_block("b2")
    b.at(b1).jump(b2)
    b.at(b2).ret()
    b2.preds.append(b2)  # corrupt
    with pytest.raises(VerificationError, match="stale pred edge"):
        verify_function(func)


def test_missing_pred_edge_rejected():
    _, func, b = empty_function()
    b1, b2 = func.add_block("b1"), func.add_block("b2")
    b.at(b1).jump(b2)
    b.at(b2).ret()
    b2.preds.clear()  # corrupt
    with pytest.raises(VerificationError):
        verify_function(func)


def test_phi_after_non_phi_rejected():
    _, func, b = empty_function()
    b0, b1 = func.add_block("b0"), func.add_block("b1")
    b.at(b0).jump(b1)
    copy = I.Copy(func.new_reg(), Const(1))
    b1.append(copy)
    phi = I.Phi(func.new_reg(), [(b0, Const(1))])
    b1.instructions.append(phi)  # bypass insert_at_front
    phi.block = b1
    b1.append(I.Ret())
    with pytest.raises(VerificationError, match="phi after non-phi"):
        verify_function(func)


def test_double_definition_rejected():
    _, func, b = empty_function()
    b1 = func.add_block("b1")
    reg = func.new_reg()
    b1.append(I.Copy(reg, Const(1)))
    second = I.Copy(reg, Const(2))
    b1.append(second)
    reg.def_inst = second
    b.at(b1).ret()
    with pytest.raises(VerificationError, match="defined more than once"):
        verify_function(func, check_ssa=True)


def test_use_before_def_in_block_rejected():
    _, func, b = empty_function()
    b1 = func.add_block("b1")
    reg = func.new_reg()
    use = I.Copy(func.new_reg(), reg)
    b1.append(use)
    b1.append(I.Copy(reg, Const(1)))
    b.at(b1).ret()
    with pytest.raises(VerificationError, match="used before local definition"):
        verify_function(func, check_ssa=True)


def test_undominated_use_rejected():
    module = parse_module(
        """
        func @f() {
        entry:
          %c = copy 1
          br %c, a, bjoin
        a:
          %t = add 1, 2
          jmp bjoin
        bjoin:
          %u = add %t, 1
          ret %u
        }
        """
    )
    with pytest.raises(VerificationError, match="does not dominate"):
        verify_module(module, check_ssa=True)


def test_phi_incoming_must_match_preds():
    module, func = simple_loop()
    header = func.find_block("header")
    phi = next(header.phis())
    phi.remove_incoming(func.find_block("body"))
    with pytest.raises(VerificationError, match="incoming blocks"):
        verify_function(func, check_ssa=True)


def test_phi_use_checked_at_pred_end():
    # A loop phi may use a value defined later in its own block via the
    # back edge; that is legal SSA and must verify.
    module, func = simple_loop()
    verify_function(func, check_ssa=True)


def test_undefined_use_rejected():
    _, func, b = empty_function()
    b1 = func.add_block("b1")
    ghost = VReg("ghost")
    b1.append(I.Copy(func.new_reg(), ghost))
    b.at(b1).ret()
    with pytest.raises(VerificationError, match="never defined"):
        verify_function(func, check_ssa=True)


def test_params_are_valid_uses():
    _, func, b = empty_function(params=["a"])
    b1 = func.add_block("b1")
    b.at(b1)
    t = b.add(func.params[0], 1)
    b.ret(t)
    verify_function(func, check_ssa=True)
