"""Verifier coverage for memory-SSA invariants."""

import pytest

from repro.ir import instructions as I
from repro.ir.verify import VerificationError, verify_function
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa

from tests.support import diamond, simple_loop


def _built(factory):
    module, func = factory()
    build_memory_ssa(func, AliasModel.conservative(module))
    return module, func


def test_valid_memssa_accepted():
    for factory in (diamond, simple_loop):
        module, func = _built(factory)
        verify_function(func, check_ssa=True, check_memssa=True)


def test_double_memory_definition_rejected():
    module, func = _built(simple_loop)
    store = next(i for i in func.instructions() if isinstance(i, I.Store))
    dup = I.Store(store.var, store.value)
    dup.mem_defs = [store.mem_defs[0]]  # same name defined twice
    store.block.insert_after(dup, store)
    with pytest.raises(VerificationError, match="defined more than once"):
        verify_function(func, check_memssa=True)


def test_stale_def_inst_rejected():
    module, func = _built(simple_loop)
    store = next(i for i in func.instructions() if isinstance(i, I.Store))
    store.mem_defs[0].def_inst = None  # corrupt the backref
    with pytest.raises(VerificationError, match="stale def_inst"):
        verify_function(func, check_memssa=True)


def test_memphi_incoming_mismatch_rejected():
    module, func = _built(simple_loop)
    phi = next(i for i in func.instructions() if isinstance(i, I.MemPhi))
    phi.remove_incoming(func.find_block("body"))
    with pytest.raises(VerificationError, match="incoming blocks"):
        verify_function(func, check_memssa=True)


def test_undominated_memory_use_rejected():
    module, func = _built(diamond)
    # Make the ret use a name defined only on the left arm.
    left_store = next(
        i
        for i in func.instructions()
        if isinstance(i, I.Store) and i.block.name == "left"
    )
    ret = func.find_block("join").terminator
    ret.mem_uses = [left_store.mem_defs[0]]
    with pytest.raises(VerificationError, match="does not dominate"):
        verify_function(func, check_memssa=True)


def test_use_before_definition_in_block_rejected():
    module, func = _built(simple_loop)
    store = next(i for i in func.instructions() if isinstance(i, I.Store))
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    # The load precedes the store in `body`; point it at the store's name.
    load.mem_uses = [store.mem_defs[0]]
    with pytest.raises(VerificationError, match="used before definition"):
        verify_function(func, check_memssa=True)


def test_never_defined_name_rejected():
    module, func = _built(simple_loop)
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    orphan = func.new_mem_name(load.var)
    load.mem_uses = [orphan]
    with pytest.raises(VerificationError, match="never defined"):
        verify_function(func, check_memssa=True)


def test_entry_names_exempt_from_dominance():
    module, func = _built(diamond)
    from repro.memory.resources import MemName

    entry_name = MemName(module.get_global("x"), 0, None)
    ret = func.find_block("join").terminator
    ret.mem_uses = [entry_name]
    verify_function(func, check_memssa=True)  # version 0 is always fine
