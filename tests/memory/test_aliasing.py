from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.memory.aliasing import AliasModel

PROGRAM = """
module m
global @g1 = 0
global @g2 = 0
array @A[4] = 0

func @leaf() {
entry:
  %t = ld @g1
  st @g1, %t
  ret
}

func @mid() {
entry:
  %r = call @leaf()
  ret
}

func @ptr_user() {
  local @y = 0
entry:
  %p = addr @y
  %t = ldp %p
  stp %p, 1
  ret
}

func @extern_caller() {
entry:
  %r = call @unknown()
  ret
}
"""


def _instrs(func, cls):
    return [i for i in func.instructions() if isinstance(i, cls)]


def test_conservative_call_touches_all_globals():
    module = parse_module(PROGRAM)
    model = AliasModel.conservative(module)
    func = module.get_function("mid")
    call = _instrs(func, I.Call)[0]
    use = [v.name for v in model.may_use_vars(func, call)]
    deff = [v.name for v in model.may_def_vars(func, call)]
    assert use == ["g1", "g2"]
    assert deff == ["g1", "g2"]


def test_load_store_touch_only_their_var():
    module = parse_module(PROGRAM)
    model = AliasModel.conservative(module)
    func = module.get_function("leaf")
    load = _instrs(func, I.Load)[0]
    store = _instrs(func, I.Store)[0]
    assert [v.name for v in model.may_use_vars(func, load)] == ["g1"]
    assert model.may_def_vars(func, load) == []
    assert [v.name for v in model.may_def_vars(func, store)] == ["g1"]
    assert model.may_use_vars(func, store) == []


def test_ret_observes_globals_not_locals():
    module = parse_module(PROGRAM)
    model = AliasModel.conservative(module)
    func = module.get_function("ptr_user")
    ret = _instrs(func, I.Ret)[0]
    assert [v.name for v in model.may_use_vars(func, ret)] == ["g1", "g2"]


def test_pointer_ops_touch_address_taken_scalars():
    module = parse_module(PROGRAM)
    model = AliasModel.conservative(module)
    func = module.get_function("ptr_user")
    pload = _instrs(func, I.PtrLoad)[0]
    pstore = _instrs(func, I.PtrStore)[0]
    # Only @y has its address taken (by the addr instruction at parse).
    assert [v.name for v in model.may_use_vars(func, pload)] == ["y"]
    # Chi semantics: a may-def also uses the incoming value.
    assert [v.name for v in model.may_use_vars(func, pstore)] == ["y"]
    assert [v.name for v in model.may_def_vars(func, pstore)] == ["y"]


def test_call_includes_exposed_locals():
    module = parse_module(PROGRAM)
    model = AliasModel.conservative(module)
    func = module.get_function("ptr_user")
    # Append a call and check its effects include the exposed local.
    call = I.Call(None, "leaf", [])
    use = [v.name for v in model.may_use_vars(func, call) if True]
    # Build the instruction set without inserting; effects depend only on
    # the function and callee.
    assert "y" in [v.name for v in model.call_effects(func, "leaf")[0]]


def test_modref_summaries_precision():
    module = parse_module(PROGRAM)
    model = AliasModel.with_modref_summaries(module)
    mid = module.get_function("mid")
    use, deff = model.call_effects(mid, "leaf")
    assert [v.name for v in use] == ["g1"]
    assert [v.name for v in deff] == ["g1"]


def test_modref_unknown_callee_is_conservative():
    module = parse_module(PROGRAM)
    model = AliasModel.with_modref_summaries(module)
    func = module.get_function("extern_caller")
    use, deff = model.call_effects(func, "unknown")
    assert [v.name for v in use] == ["g1", "g2"]


def test_modref_transitive_through_call_chain():
    module = parse_module(PROGRAM)
    model = AliasModel.with_modref_summaries(module)
    assert model.modref["mid"][0] == {"g1"}
    assert model.modref["mid"][1] == {"g1"}
    # ptr_user touches no globals (its pointer only reaches @y).
    assert model.modref["ptr_user"] == (set(), set())


def test_tracked_vars_sorted_and_scalar_only():
    module = parse_module(PROGRAM)
    model = AliasModel.conservative(module)
    func = module.get_function("ptr_user")
    names = [v.name for v in model.tracked_vars(func)]
    assert names == ["g1", "g2", "y"]  # array @A excluded


def test_modref_may_def_implies_use():
    # Chi semantics with summaries: a callee that writes a global on one
    # path only MAY define it, so the call must also use the incoming
    # value — otherwise a live caller-side store looks dead (regression
    # test for a bug found by option-matrix fuzzing).
    module = parse_module(
        """
        module m
        global @g = 0
        func @writer(%c) {
        entry:
          br %c, doit, skip
        doit:
          st @g, 1
          jmp skip
        skip:
          ret
        }
        func @main() {
        entry:
          st @g, 6
          %r = call @writer(0)
          %t = ld @g
          ret %t
        }
        """
    )
    model = AliasModel.with_modref_summaries(module)
    func = module.get_function("main")
    use, deff = model.call_effects(func, "writer")
    assert [v.name for v in deff] == ["g"]
    assert [v.name for v in use] == ["g"]  # chi: def implies use


def test_modref_end_to_end_semantics():
    from repro.frontend.lower import compile_source
    from repro.profile.interp import run_module
    from repro.promotion.pipeline import PromotionPipeline

    src = """
    int g = 0;
    void writer(int c) { if (c) g = 1; }
    int main() {
        g = 6;
        writer(0);
        print(g);
        return g;
    }
    """
    baseline = run_module(compile_source(src))
    module = compile_source(src)
    result = PromotionPipeline(alias_model=AliasModel.with_modref_summaries).run(module)
    assert result.output_matches
    assert run_module(module).output == baseline.output == [(6,)]
