from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.ir.verify import verify_function
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa

from tests.support import diamond, simple_loop


def _build(module, fname):
    func = module.get_function(fname)
    model = AliasModel.conservative(module)
    mssa = build_memory_ssa(func, model)
    verify_function(func, check_ssa=True, check_memssa=True)
    return func, mssa


def test_diamond_gets_memphi_at_join():
    module, func = diamond()
    func, mssa = _build(module, "diamond")
    join = func.find_block("join")
    phis = list(join.mem_phis())
    assert len(phis) == 1
    phi = phis[0]
    assert phi.var.name == "x"
    assert len(phi.incoming) == 2
    # Ret uses the phi's name (globals observable at return).
    ret = join.terminator
    assert ret.mem_uses == [phi.dst_name]


def test_load_uses_entry_name():
    module, func = diamond()
    func, mssa = _build(module, "diamond")
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    assert load.mem_uses[0].is_entry
    assert load.mem_uses[0] is mssa.entry_names[module.get_global("x")]


def test_stores_get_unique_names():
    module, func = diamond()
    func, _ = _build(module, "diamond")
    stores = [i for i in func.instructions() if isinstance(i, I.Store)]
    names = {id(s.mem_defs[0]) for s in stores}
    assert len(names) == 2
    versions = {s.mem_defs[0].version for s in stores}
    assert 0 not in versions


def test_loop_memphi_at_header():
    module, func = simple_loop()
    func, _ = _build(module, "loop")
    header = func.find_block("header")
    phis = list(header.mem_phis())
    assert len(phis) == 1
    phi = phis[0]
    body_store = next(i for i in func.instructions() if isinstance(i, I.Store))
    incoming = {b.name: n for b, n in phi.incoming}
    assert incoming["entry"].is_entry
    assert incoming["body"] is body_store.mem_defs[0]
    # The load in the body reads the header phi's name.
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    assert load.mem_uses[0] is phi.dst_name


def test_call_defines_fresh_names_and_uses_old():
    module = parse_module(
        """
        module m
        global @x = 0
        func @f() {
        entry:
          st @x, 1
          %r = call @g()
          %t = ld @x
          ret %t
        }
        func @g() {
        entry:
          ret
        }
        """
    )
    func, _ = _build(module, "f")
    call = next(i for i in func.instructions() if isinstance(i, I.Call))
    store = next(i for i in func.instructions() if isinstance(i, I.Store))
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    assert call.mem_uses == [store.mem_defs[0]]
    assert len(call.mem_defs) == 1
    assert load.mem_uses == [call.mem_defs[0]]


def test_figure1_web_shape():
    # The paper's Figure 1: x incremented in loop 1, foo() called in loop 2.
    module = parse_module(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          jmp h1
        h1:
          %i = phi [entry: 0, b1: %i2]
          %c1 = lt %i, 100
          br %c1, b1, pre2
        b1:
          %t1 = ld @x
          %t2 = add %t1, 1
          st @x, %t2
          %i2 = add %i, 1
          jmp h1
        pre2:
          jmp h2
        h2:
          %j = phi [pre2: 0, b2: %j2]
          %c2 = lt %j, 10
          br %c2, b2, done
        b2:
          %r = call @foo()
          %j2 = add %j, 1
          jmp h2
        done:
          ret
        }
        func @foo() {
        entry:
          ret
        }
        """
    )
    func, mssa = _build(module, "main")
    x = module.get_global("x")
    # Names: x0 entry, phi at h1, store def, phi at h2, call def = 5 names,
    # exactly the paper's web {x0, x1, x2, x3, x4}.
    names = mssa.names_of(x)
    assert len(names) == 5
    h1_phis = list(func.find_block("h1").mem_phis())
    h2_phis = list(func.find_block("h2").mem_phis())
    assert len(h1_phis) == 1 and len(h2_phis) == 1


def test_rebuild_is_idempotent():
    module, func = simple_loop()
    model = AliasModel.conservative(module)
    build_memory_ssa(func, model)
    n_phis = sum(1 for i in func.instructions() if isinstance(i, I.MemPhi))
    build_memory_ssa(func, model)
    n_phis2 = sum(1 for i in func.instructions() if isinstance(i, I.MemPhi))
    assert n_phis == n_phis2
    verify_function(func, check_ssa=True, check_memssa=True)


def test_exposed_local_versioned():
    module = parse_module(
        """
        module m
        func @f() {
          local @y = 0
        entry:
          %p = addr @y
          st @y, 3
          stp %p, 4
          %t = ld @y
          ret %t
        }
        """
    )
    func, _ = _build(module, "f")
    store = next(i for i in func.instructions() if isinstance(i, I.Store))
    pstore = next(i for i in func.instructions() if isinstance(i, I.PtrStore))
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    # Chi: the pointer store uses the singleton store's name and defines a
    # fresh one, which the load then reads.
    assert pstore.mem_uses == [store.mem_defs[0]]
    assert load.mem_uses == [pstore.mem_defs[0]]


def test_untouched_variable_gets_no_phis():
    module = parse_module(
        """
        module m
        global @x = 0
        global @quiet = 0
        func @f() {
        entry:
          %c = ld @x
          br %c, a, b
        a:
          st @x, 1
          jmp join
        b:
          st @x, 2
          jmp join
        join:
          ret
        }
        """
    )
    func, _ = _build(module, "f")
    for phi in (i for i in func.instructions() if isinstance(i, I.MemPhi)):
        assert phi.var.name == "x"  # @quiet has no defs, hence no phis
