from repro.memory.resources import MemName, MemoryVar, VarKind


def test_scalar_kinds_promotable():
    assert MemoryVar("x", VarKind.GLOBAL).promotable
    assert MemoryVar("y", VarKind.LOCAL).promotable
    assert MemoryVar("s.f", VarKind.FIELD).promotable
    assert not MemoryVar("A", VarKind.ARRAY, size=4).promotable


def test_memname_repr_and_entry():
    x = MemoryVar("x")
    assert str(MemName(x, 0)) == "x_0"
    assert MemName(x, 0).is_entry
    assert not MemName(x, 3).is_entry


def test_memoryvar_defaults():
    x = MemoryVar("x", initial=7)
    assert x.initial == 7
    assert x.size == 1
    assert not x.address_taken
