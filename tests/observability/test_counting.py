"""The shared OpCounts helper and its pipeline-facing views."""

from repro.frontend.lower import compile_source
from repro.observability import OpCounts
from repro.promotion.pipeline import PromotionPipeline, StaticCounts

SOURCE = """
int g = 0;
int main() {
    for (int i = 0; i < 3; i++) g = g + i;
    print(g);
    return g;
}
"""


def test_of_module_is_sum_of_functions():
    module = compile_source(SOURCE)
    total = OpCounts()
    for function in module.functions.values():
        total.add(OpCounts.of_function(function))
    assert OpCounts.of_module(module) == total
    assert total.total == total.loads + total.stores


def test_of_execution_reads_interpreter_counters():
    from repro.profile.interp import Interpreter

    module = compile_source(SOURCE)
    run = Interpreter(module).run("main", [])
    counts = OpCounts.of_execution(run)
    assert (counts.loads, counts.stores) == (run.loads, run.stores)


def test_pipeline_counts_are_opcounts_views():
    module = compile_source(SOURCE)
    result = PromotionPipeline().run(module)
    assert isinstance(result.static_before, OpCounts)
    assert isinstance(result.dynamic_after, OpCounts)
    # The classmethod walk and the pipeline's own count agree (they are
    # the same code path now).
    assert StaticCounts.of_module(module) == result.static_after


def test_as_dict_and_equality():
    a = OpCounts(2, 3)
    assert a.as_dict() == {"loads": 2, "stores": 3, "total": 5}
    assert a == OpCounts(2, 3)
    assert a != OpCounts(3, 2)
    assert (a == object()) is False
