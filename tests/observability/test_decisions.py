"""The promotion decision journal: per-access verdicts with rationale,
and the reconciliation invariant that ties it to ``StaticCounts``.

The contract under test: every ``Load``/``Store`` present when
``promote_function`` enters a function (i.e. after mem2reg and CFG
normalization — exactly what ``PipelineResult.static_before`` counts) is
a candidate, and ``promoted + partial + blocked == candidates`` on every
workload, serial and parallel alike.  Compensating accesses promotion
itself inserted are journaled but excluded from that reconciliation.
"""

import json

import pytest

from repro.bench.workloads import ORDER, WORKLOADS
from repro.frontend.lower import compile_source
from repro.observability.decisions import (
    DECISIONS_SCHEMA_VERSION,
    NULL_DECISIONS,
    DecisionJournal,
    NullDecisionJournal,
    ambient,
)
from repro.promotion.pipeline import PromotionPipeline

SOURCE = """
int shared = 0;
int bump(int k) {
    for (int i = 0; i < 6; i++) shared += k;
    return shared;
}
int main() {
    print(bump(3));
    return 0;
}
"""


def run_with_journal(source, jobs=1, entry="main", args=()):
    module = compile_source(source)
    journal = DecisionJournal()
    result = PromotionPipeline(
        decisions=journal, jobs=jobs, entry=entry, args=list(args)
    ).run(module)
    return journal, result


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("name", ORDER)
def test_reconciliation_on_the_paper_workloads(name, jobs):
    workload = WORKLOADS[name]
    journal, result = run_with_journal(
        workload.source, jobs=jobs, entry=workload.entry, args=workload.args
    )
    totals = journal.summary()["totals"]
    static = result.static_before
    assert totals["candidates"] == static.loads + static.stores, (
        f"{name}: journal candidates != static before-counts"
    )
    assert (
        totals["promoted"] + totals["partial"] + totals["blocked"]
        == totals["candidates"]
    ), f"{name}: verdicts do not partition the candidates"


def test_serial_and_parallel_journals_agree():
    serial, _ = run_with_journal(WORKLOADS["compress"].source, jobs=1)
    parallel, _ = run_with_journal(WORKLOADS["compress"].source, jobs=2)
    assert serial.summary() == parallel.summary()
    assert serial.export() == parallel.export()


def test_every_access_line_carries_a_verdict_and_rationale():
    journal, _ = run_with_journal(WORKLOADS["go"].source)
    seen_verdicts = set()
    for doc in journal.export():
        assert doc["status"] == "committed"
        for access in doc["accesses"]:
            assert access["origin"] in ("candidate", "compensating")
            assert access["reason"]
            if access["origin"] == "candidate":
                assert access["access"] in ("load", "store")
                assert access["verdict"] in ("promoted", "partial", "blocked")
                seen_verdicts.add(access["verdict"])
            else:
                # Compensating accesses include the dummy loads that
                # summarize a web for its parent interval; when an
                # enclosing interval re-triages one, its verdict is
                # overwritten in place.
                assert access["access"] in ("load", "store", "dummy")
                assert access["verdict"] in (
                    "inserted",
                    "promoted",
                    "partial",
                    "blocked",
                )
    # A real workload exercises both promoted and blocked paths.
    assert {"promoted", "blocked"} <= seen_verdicts


def test_blocked_reasons_name_their_cause():
    journal, _ = run_with_journal(WORKLOADS["go"].source)
    reasons = {
        access["reason"]
        for doc in journal.export()
        for access in doc["accesses"]
        if access["verdict"] == "blocked"
    }
    known = {
        "alias-kill",
        "unprofitable",
        "pressure-limit",
        "not-in-promotable-web",
    }
    assert reasons and reasons <= known


def test_rolled_back_functions_are_stamped_and_excluded_from_totals():
    journal, _ = run_with_journal(SOURCE)
    committed = journal.summary()["totals"]["candidates"]
    journal.mark("bump", "rolled_back")
    summary = journal.summary()
    assert summary["statuses"]["rolled_back"] == 1
    assert summary["totals"]["candidates"] < committed or committed == 0
    # Re-marking an unknown function is a no-op, not an error.
    journal.mark("no-such-function", "quarantined")


def test_jsonl_lines_start_with_metadata_then_one_line_per_access():
    journal, _ = run_with_journal(SOURCE)
    lines = [json.loads(line) for line in journal.jsonl_lines({"tool": "test"})]
    head = lines[0]
    assert head["type"] == "metadata"
    assert head["version"] == DECISIONS_SCHEMA_VERSION
    assert head["tool"] == "test"
    assert head["summary"] == journal.summary()
    body = lines[1:]
    assert body and all(line["type"] == "decision" for line in body)
    journaled = sum(len(doc["accesses"]) for doc in journal.export())
    assert len(body) == journaled
    assert all("function" in line and "verdict" in line for line in body)


def test_write_produces_a_parseable_jsonl_file(tmp_path):
    journal, _ = run_with_journal(SOURCE)
    path = tmp_path / "decisions.jsonl"
    journal.write(str(path), {"tool": "test"})
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines[0]["type"] == "metadata"
    assert len(lines) >= 1


def test_absorb_adopts_worker_documents_in_call_order():
    journal = DecisionJournal()
    journal.absorb({"function": "a", "status": "committed", "counts": {
        "candidates": 2, "promoted": 1, "partial": 0, "blocked": 1,
        "compensating": 0}, "accesses": []})
    journal.absorb(None)  # a worker with nothing to report
    journal.absorb({"function": "b", "status": "committed", "counts": {
        "candidates": 1, "promoted": 1, "partial": 0, "blocked": 0,
        "compensating": 0}, "accesses": []})
    assert [doc["function"] for doc in journal.export()] == ["a", "b"]
    assert journal.summary()["totals"]["candidates"] == 3


def test_disabled_journal_is_a_true_null_object(tmp_path):
    assert ambient() is NULL_DECISIONS
    null = NullDecisionJournal()
    assert null.function(object()).enabled is False
    null.mark("f", "rolled_back")
    assert null.export() == []
    assert null.summary() == {}
    assert list(null.jsonl_lines()) == []
    path = tmp_path / "never.jsonl"
    null.write(str(path))
    assert not path.exists()


def test_pipeline_without_journal_keeps_diagnostics_clean():
    module = compile_source(SOURCE)
    result = PromotionPipeline().run(module)
    assert result.decisions is None
    assert result.diagnostics.decisions is None


def test_pipeline_summary_lands_in_diagnostics():
    journal, result = run_with_journal(SOURCE)
    assert result.decisions is journal
    assert result.diagnostics.decisions == journal.summary()
