"""Trace determinism: parallel runs replay the serial span tree, and
chaos runs replay identical event sequences from the same seed."""

from repro.frontend.lower import compile_source
from repro.observability import Observability
from repro.promotion.pipeline import PromotionPipeline
from repro.robustness import ChaosConfig, ResilienceOptions

SOURCE = """
int a = 0;
int b = 0;
int left(int k) {
    for (int i = 0; i < 4; i++) a += k;
    return a;
}
int right(int k) {
    for (int i = 0; i < 3; i++) b += k;
    return b;
}
int main() {
    print(left(2) + right(3));
    return 0;
}
"""

#: Metrics that legitimately differ between serial and parallel runs:
#: cache hit/miss counts depend on process boundaries, and the
#: transport/lane/job counters describe the execution layer itself.
EXECUTION_LAYER_PREFIXES = ("cache.", "parallel.")
EXECUTION_LAYER_METRICS = ("pipeline.jobs_used",)


def _span_tree(tracer):
    """(name, children) shape of the trace — no ids, times, or lanes."""
    by_parent = {}
    for record in tracer.records:
        by_parent.setdefault(record.parent, []).append(record)

    def walk(record):
        return (record.name, [walk(c) for c in by_parent.get(record.id, [])])

    return [walk(r) for r in by_parent.get(None, [])]


def _comparable_metrics(metrics):
    return {
        name: doc
        for name, doc in metrics.as_dict().items()
        if not name.startswith(EXECUTION_LAYER_PREFIXES)
        and name not in EXECUTION_LAYER_METRICS
    }


def _run(jobs, resilience=None):
    obs = Observability.recording()
    module = compile_source(SOURCE)
    result = PromotionPipeline(
        jobs=jobs, resilience=resilience, observability=obs
    ).run(module)
    return obs, result


def test_parallel_trace_replays_the_serial_span_tree():
    obs_serial, res_serial = _run(1)
    obs_parallel, res_parallel = _run(4)
    assert res_parallel.jobs_used > 1, "parallel run fell back to serial"
    assert _span_tree(obs_parallel.tracer) == _span_tree(obs_serial.tracer)


def test_parallel_metrics_match_serial_modulo_execution_layer():
    obs_serial, _ = _run(1)
    obs_parallel, _ = _run(4)
    assert _comparable_metrics(obs_parallel.metrics) == _comparable_metrics(
        obs_serial.metrics
    )


def test_worker_lanes_are_preserved_in_the_merged_trace():
    obs, result = _run(2)
    assert result.jobs_used == 2
    parent_pid = obs.tracer.records[0].pid
    worker_pids = {
        r.pid
        for r in obs.tracer.records
        if r.name.startswith(("function:", "stage:"))
    }
    assert worker_pids and parent_pid not in worker_pids


def test_chaos_replays_identical_event_sequences_from_the_same_seed():
    def chaos_run():
        resilience = ResilienceOptions(
            retries=2,
            seed=77,
            chaos=ChaosConfig.parse("transient=0.5,seed=77"),
        )
        obs, result = _run(2, resilience=resilience)
        events = [
            (r.name, r.attrs.get("attempt"), r.attrs.get("outcome"))
            for r in obs.tracer.records
            if r.name.startswith("attempt:")
        ]
        resilience_metrics = {
            k: v
            for k, v in obs.metrics.as_dict().items()
            if k.startswith("resilience.")
        }
        return events, resilience_metrics, _span_tree(obs.tracer)

    first = chaos_run()
    second = chaos_run()
    assert first == second
    events = first[0]
    assert events, "chaos at p=0.5 should have produced attempt events"
    assert any(outcome == "transient" for _, _, outcome in events)
