"""docs/OBSERVABILITY.md's metric catalog must match what the code
records.

The catalog tables are the operator-facing contract for dashboards and
alerts, so drift is a bug in either direction:

* a metric the code records that no catalog row covers — undocumented
  telemetry;
* a catalog row no recording site backs — documentation for a metric
  that does not exist.

Names are gathered two ways.  *Dynamically*: real pipeline runs (serial
with the decision journal, parallel, resilient-parallel under chaos)
populate a registry whose keys are ground truth.  *Statically*: metric
name literals and f-string templates are extracted from the modules
whose paths a unit test cannot cheaply drive end-to-end (the router's
asyncio server, the css96 comparator).
"""

from __future__ import annotations

import os
import re

import pytest

from repro.frontend.lower import compile_source
from repro.observability import Observability
from repro.observability.decisions import DecisionJournal
from repro.promotion.pipeline import PromotionPipeline
from repro.robustness import ChaosConfig, ResilienceOptions

SOURCE = """
int a = 0;
int b = 0;
int left(int k) {
    for (int i = 0; i < 4; i++) a += k;
    return a;
}
int right(int k) {
    for (int i = 0; i < 3; i++) b += k;
    return b;
}
int main() {
    print(left(2) + right(3));
    return 0;
}
"""

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DOC = os.path.join(REPO, "docs", "OBSERVABILITY.md")
SRC = os.path.join(REPO, "src", "repro")

#: Catalog rows look like ``| `name` | kind | ... |`` with the suffix
#: shorthand ``a.b/.c`` and ``<kind>``-style dynamic segments.
_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|")


def documented_patterns():
    """The catalog as (pattern, regex) pairs, shorthand expanded."""
    patterns = []
    with open(DOC) as handle:
        for line in handle:
            match = _ROW.match(line.strip())
            if not match:
                continue
            name = match.group(1).replace(" ", "").replace("\n", "")
            parts = name.split("/")
            expanded = [parts[0]]
            for part in parts[1:]:
                assert part.startswith("."), (
                    f"catalog shorthand {name!r}: every alternative after "
                    f"the first must start with '.' (suffix replacement)"
                )
                depth = part.count(".")
                base = expanded[0].rsplit(".", depth)[0]
                expanded.append(base + part)
            patterns.extend(expanded)
    assert patterns, "no catalog rows found — did the table format change?"
    return [(p, _pattern_regex(p)) for p in patterns]


def _pattern_regex(pattern: str) -> "re.Pattern[str]":
    literal_parts = re.split(r"<[^>]*>", pattern)
    regex = "[^.]+".join(re.escape(part) for part in literal_parts)
    return re.compile("^" + regex + "$")


def recorded_names():
    """Ground truth, union of dynamic registry keys and static literals."""
    names = set()

    module = compile_source(SOURCE)
    obs = Observability.recording()
    PromotionPipeline(observability=obs, decisions=DecisionJournal()).run(module)
    names.update(obs.metrics.as_dict())

    module = compile_source(SOURCE)
    obs = Observability.recording()
    PromotionPipeline(observability=obs, jobs=2).run(module)
    names.update(obs.metrics.as_dict())

    module = compile_source(SOURCE)
    obs = Observability.recording()
    PromotionPipeline(
        observability=obs,
        jobs=2,
        resilience=ResilienceOptions(
            retries=2,
            seed=7,
            chaos=ChaosConfig(transient=0.8, seed=7),
        ),
    ).run(module)
    names.update(obs.metrics.as_dict())

    names.update(_static_names("service/router.py"))
    names.update(_static_names("ssa/css96.py"))
    names.update(_static_names("promotion/pipeline.py"))
    # resilience.<outcome> is recorded via string concatenation; the
    # chaos run above covers "transient", these cover the rest.
    names.update({"resilience.timeout", "resilience.worker_crash"})
    return names


_LITERAL = re.compile(r"""\.(?:inc|set)\(\s*f?"([a-z_.{}\[\]a-zA-Z0-9]+)"\s*[,)]""")


def _static_names(relpath: str):
    """Metric names literally present in one source file; f-string
    ``{...}`` holes become one sample segment so templates like
    ``router.backend.{state.id}.jobs`` match ``<id>`` catalog rows."""
    with open(os.path.join(SRC, relpath)) as handle:
        source = handle.read()
    for match in _LITERAL.finditer(source):
        name = re.sub(r"\{[^}]*\}", "sample", match.group(1))
        if "." in name:  # span attrs and units use dotless names
            yield name


def _is_documented(name, patterns):
    if any(regex.match(name) for _, regex in patterns):
        return True
    # A template hole substituted with "sample" (e.g. router.skips.{reason}
    # → router.skips.sample) may be documented as enumerated rows rather
    # than a <placeholder>; accept it when the template, re-wildcarded,
    # matches some concrete documented name.
    if "sample" in name.split("."):
        template = re.compile(
            "^"
            + ".".join(
                "[^.]+" if seg == "sample" else re.escape(seg)
                for seg in name.split(".")
            )
            + "$"
        )
        return any(
            template.match(pattern)
            for pattern, _ in patterns
            if "<" not in pattern
        )
    return False


def test_every_recorded_metric_is_documented():
    patterns = documented_patterns()
    undocumented = sorted(
        name
        for name in recorded_names()
        if not _is_documented(name, patterns)
    )
    assert not undocumented, (
        "metrics recorded by the code but missing from "
        f"docs/OBSERVABILITY.md: {undocumented}"
    )


def test_every_documented_metric_is_recorded():
    names = recorded_names()
    # A recorded template (sample-substituted f-string) backs every
    # concrete documented name it can instantiate.
    template_regexes = [
        re.compile(
            "^"
            + ".".join(
                "[^.]+" if seg == "sample" else re.escape(seg)
                for seg in name.split(".")
            )
            + "$"
        )
        for name in names
        if "sample" in name.split(".")
    ]
    stale = sorted(
        pattern
        for pattern, regex in documented_patterns()
        if not any(regex.match(name) for name in names)
        and not any(t.match(pattern) for t in template_regexes if "<" not in pattern)
    )
    assert not stale, (
        "docs/OBSERVABILITY.md catalogs metrics nothing records "
        f"anymore: {stale}"
    )


@pytest.mark.parametrize(
    "shorthand, expected",
    [
        (
            "promotion.webs_seen/.webs_promoted",
            ["promotion.webs_seen", "promotion.webs_promoted"],
        ),
        (
            "cache.<kind>.hits/.misses",
            ["cache.<kind>.hits", "cache.<kind>.misses"],
        ),
    ],
)
def test_shorthand_expansion(shorthand, expected):
    parts = shorthand.split("/")
    expanded = [parts[0]]
    for part in parts[1:]:
        depth = part.count(".")
        expanded.append(parts[0].rsplit(".", depth)[0] + part)
    assert expanded == expected
