"""Exporters: Chrome trace shape, JSONL log, metrics doc, text summary."""

import json

from repro.observability import (
    SCHEMA_VERSION,
    MetricsRegistry,
    Tracer,
    build_metadata,
    chrome_trace_document,
    metrics_document,
    text_summary,
    write_metrics,
    write_trace,
)


def _sample():
    tracer = Tracer()
    with tracer.span("pipeline", module="m"):
        with tracer.span("phase:promote", category="phase"):
            pass
    metrics = MetricsRegistry()
    metrics.inc("promotion.webs_promoted", 2)
    metrics.observe("duration", 1.5)
    return tracer, metrics


def test_chrome_trace_document_shape():
    tracer, _ = _sample()
    doc = chrome_trace_document(tracer, build_metadata(profile_source="interpreter"))
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert meta and meta[0]["args"]["name"] == "pipeline"
    assert [e["name"] for e in complete] == ["pipeline", "phase:promote"]
    # Timestamps are relative to the trace base, in microseconds.
    assert min(e["ts"] for e in complete) == 0.0
    assert all(e["dur"] >= 0 for e in complete)
    assert doc["otherData"]["schema_version"] == SCHEMA_VERSION
    assert doc["otherData"]["profile_source"] == "interpreter"
    json.dumps(doc)  # must be serializable as-is


def test_write_trace_dispatches_on_suffix(tmp_path):
    tracer, metrics = _sample()
    chrome = tmp_path / "t.json"
    log = tmp_path / "t.jsonl"
    write_trace(str(chrome), tracer, metrics)
    write_trace(str(log), tracer, metrics)
    assert "traceEvents" in json.loads(chrome.read_text())
    lines = [json.loads(line) for line in log.read_text().splitlines()]
    assert lines[0]["type"] == "metadata"
    assert [ln["name"] for ln in lines if ln["type"] == "span"] == [
        "pipeline",
        "phase:promote",
    ]
    assert any(ln["type"] == "metric" for ln in lines)


def test_metrics_document_and_writer(tmp_path):
    _, metrics = _sample()
    doc = metrics_document(metrics)
    assert doc["schema_version"] == SCHEMA_VERSION
    assert doc["metrics"]["promotion.webs_promoted"]["value"] == 2
    path = tmp_path / "m.json"
    write_metrics(str(path), metrics, build_metadata(config={"jobs": 2}))
    loaded = json.loads(path.read_text())
    assert loaded["metadata"]["config"] == {"jobs": 2}


def test_text_summary_renders_tree_and_metrics():
    tracer, metrics = _sample()
    text = text_summary(tracer, metrics)
    assert "pipeline" in text
    assert "phase:promote" in text
    assert "promotion.webs_promoted: 2" in text
    assert "duration: n=1" in text


def test_metadata_is_self_describing():
    meta = build_metadata(
        profile_source="estimator", config={"jobs": 2, "seed": 7}, tool="x"
    )
    assert meta["schema_version"] == SCHEMA_VERSION
    assert meta["config"]["seed"] == 7
    assert meta["tool"] == "x"


def test_writes_are_atomic_and_leave_no_temp_litter(tmp_path, monkeypatch):
    from repro.observability.export import atomic_write_text

    target = tmp_path / "out.json"
    target.write_text("old artifact")

    # A failure mid-write (simulated at fsync) keeps the old artifact
    # intact and unlinks the temp file.
    monkeypatch.setattr(
        "repro.observability.export.os.fsync",
        lambda fd: (_ for _ in ()).throw(OSError(28, "No space left on device")),
    )
    try:
        atomic_write_text(str(target), "half-written")
    except OSError:
        pass
    else:  # pragma: no cover - the simulated failure must propagate
        raise AssertionError("expected the simulated fsync failure to raise")
    assert target.read_text() == "old artifact"
    assert list(tmp_path.iterdir()) == [target]

    monkeypatch.undo()
    atomic_write_text(str(target), "new artifact")
    assert target.read_text() == "new artifact"
    assert list(tmp_path.iterdir()) == [target]


def test_trace_and_metrics_writers_go_through_the_atomic_path(tmp_path):
    tracer, metrics = _sample()
    trace_path = tmp_path / "t.json"
    write_trace(str(trace_path), tracer, metrics, build_metadata())
    write_metrics(str(tmp_path / "m.json"), metrics, build_metadata())
    # No .tmp files survive a successful export.
    assert sorted(p.name for p in tmp_path.iterdir()) == ["m.json", "t.json"]
