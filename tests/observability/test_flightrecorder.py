"""The crash flight recorder: ring bounds, dump artifacts, the ambient
install, and the never-raise dump contract."""

import json
import os

import pytest

from repro.observability import flightrecorder
from repro.observability.flightrecorder import (
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
)


@pytest.fixture(autouse=True)
def _reset_ambient():
    yield
    flightrecorder.install(None)


def test_ring_is_bounded_and_keeps_the_newest_events():
    recorder = FlightRecorder("t", capacity=3, clock=lambda: 1.0)
    for i in range(10):
        recorder.record("tick", n=i)
    events = recorder.snapshot()
    assert [e["n"] for e in events] == [7, 8, 9]
    assert recorder.recorded_total == 10
    assert recorder.as_dict()["buffered"] == 3


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder("t", capacity=0)


def test_dump_writes_the_ring_with_pid_in_the_name(tmp_path):
    recorder = FlightRecorder(
        "daemon", artifacts_dir=str(tmp_path), clock=lambda: 42.0
    )
    recorder.record("admission.accepted", job_id="j-1")
    recorder.record("breaker.open", trips=2)
    path = recorder.dump("breaker-open")
    assert path is not None
    assert os.path.basename(path) == (
        f"flight-daemon-{os.getpid()}-breaker-open-001.json"
    )
    doc = json.loads(open(path).read())
    assert doc["recorder"] == "daemon"
    assert doc["reason"] == "breaker-open"
    assert doc["pid"] == os.getpid()
    assert [e["kind"] for e in doc["events"]] == [
        "admission.accepted",
        "breaker.open",
    ]
    assert all(e["t"] == 42.0 for e in doc["events"])

    # A second dump gets its own sequence number — nothing overwritten.
    second = recorder.dump("breaker-open")
    assert second != path and second.endswith("-002.json")


def test_sibling_processes_cannot_collide_on_dump_names(tmp_path):
    # Same recorder name, same reason: the pid segment keeps a cluster's
    # three daemons from overwriting each other's black boxes.
    recorder = FlightRecorder("daemon", artifacts_dir=str(tmp_path))
    path = recorder.dump("sigterm-drain")
    assert f"-{os.getpid()}-" in os.path.basename(path)


def test_dump_reason_is_slugged_for_the_filesystem(tmp_path):
    recorder = FlightRecorder("r", artifacts_dir=str(tmp_path))
    path = recorder.dump("Engine Crash/j 9!")
    assert os.path.exists(path)
    assert "engine-crash-j-9" in os.path.basename(path)


def test_dump_without_artifacts_dir_is_a_noop():
    recorder = FlightRecorder("t")
    recorder.record("x")
    assert recorder.dump("whatever") is None


def test_dump_never_raises_on_an_unwritable_directory():
    recorder = FlightRecorder("t", artifacts_dir="/proc/definitely/not/writable")
    recorder.record("x")
    assert recorder.dump("crash") is None  # swallowed, not raised


def test_ambient_install_and_reset():
    assert flightrecorder.ambient() is NULL_FLIGHT_RECORDER
    mine = FlightRecorder("mine")
    previous = flightrecorder.install(mine)
    assert previous is NULL_FLIGHT_RECORDER
    assert flightrecorder.ambient() is mine
    flightrecorder.ambient().record("seen")
    assert [e["kind"] for e in mine.snapshot()] == ["seen"]
    flightrecorder.install(None)
    assert flightrecorder.ambient() is NULL_FLIGHT_RECORDER


def test_null_recorder_swallows_everything(tmp_path):
    null = NullFlightRecorder()
    null.record("anything", detail=1)
    assert null.snapshot() == []
    assert null.dump("reason", artifacts_dir=str(tmp_path)) is None
    assert list(tmp_path.iterdir()) == []
    assert null.enabled is False
