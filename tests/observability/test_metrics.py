"""Metrics registry: instruments, absorb semantics, ambient installer."""

import pytest

from repro.observability.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    activate,
    ambient,
)


def test_counter_gauge_histogram_record():
    reg = MetricsRegistry()
    reg.inc("loads.deleted", 3)
    reg.inc("loads.deleted")
    reg.set("jobs", 4, unit="workers")
    reg.observe("duration", 2.0)
    reg.observe("duration", 6.0)
    doc = reg.as_dict()
    assert doc["loads.deleted"] == {"type": "counter", "unit": "count", "value": 4}
    assert doc["jobs"]["value"] == 4
    hist = doc["duration"]
    assert (hist["count"], hist["sum"], hist["min"], hist["max"]) == (2, 8.0, 2.0, 6.0)
    assert reg.ops == 5
    assert reg.value("loads.deleted") == 4
    assert reg.value("missing") is None


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.inc("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_absorb_adds_counters_pools_histograms_overwrites_gauges():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("c", 2)
    a.set("g", 1)
    a.observe("h", 10.0)
    b.inc("c", 5)
    b.set("g", 9)
    b.observe("h", 1.0)
    a.absorb(b.as_dict())
    assert a.value("c") == 7
    assert a.value("g") == 9
    hist = a.as_dict()["h"]
    assert (hist["count"], hist["min"], hist["max"]) == (2, 1.0, 10.0)


def test_absorb_none_and_empty_are_noops():
    reg = MetricsRegistry()
    reg.absorb(None)
    reg.absorb({})
    assert len(reg) == 0


def test_ambient_defaults_to_null_registry():
    assert ambient() is NULL_METRICS


def test_activate_installs_even_an_empty_registry():
    # Regression: an empty registry is falsy (len() == 0); ambient() must
    # still return it rather than the null object.
    reg = MetricsRegistry()
    with activate(reg):
        assert ambient() is reg
        ambient().inc("seen")
    assert reg.value("seen") == 1
    assert ambient() is NULL_METRICS


def test_null_metrics_is_inert():
    assert not NULL_METRICS.enabled
    NULL_METRICS.inc("x")
    NULL_METRICS.set("x", 1)
    NULL_METRICS.observe("x", 1.0)
    NULL_METRICS.counter("x").inc()
    assert NULL_METRICS.as_dict() == {}
    assert len(NULL_METRICS) == 0
    assert NULL_METRICS.ops == 0
