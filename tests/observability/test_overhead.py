"""The disabled-path overhead estimate and its gate."""

from repro.bench.overhead import (
    OVERHEAD_GATE_PCT,
    check_overhead,
    measure_null_op_cost,
    measure_workload_overhead,
)
from repro.bench.workloads import WORKLOADS


def test_null_op_cost_is_sub_microsecond_scale():
    cost = measure_null_op_cost(iterations=20_000)
    assert 0 < cost < 50e-6  # generous even for a loaded CI box


def test_workload_probe_reports_the_gate_inputs():
    row = measure_workload_overhead(WORKLOADS["li"], null_op_cost_s=1e-7)
    assert row["workload"] == "li"
    assert row["instrumentation_events"] > 0
    assert row["disabled_seconds"] > 0
    assert row["estimated_overhead_pct"] >= 0


def test_gate_passes_under_and_fails_over_the_bound():
    assert check_overhead({"worst_estimated_overhead_pct": 0.5}) == []
    failures = check_overhead(
        {"worst_estimated_overhead_pct": OVERHEAD_GATE_PCT + 1}
    )
    assert len(failures) == 1
    assert "gate" in failures[0]


def test_real_probe_stays_within_the_gate():
    cost = measure_null_op_cost(iterations=50_000)
    row = measure_workload_overhead(WORKLOADS["li"], cost)
    assert row["estimated_overhead_pct"] <= OVERHEAD_GATE_PCT
