"""Observed pipeline runs: span coverage, metric/report consistency, and
the diagnostics ``observability`` section."""

from repro.frontend.lower import compile_source
from repro.observability import NULL_OBSERVABILITY, Observability
from repro.promotion.pipeline import PromotionPipeline

SOURCE = """
int total = 0;
int bump(int k) {
    for (int i = 0; i < 4; i++) total += k;
    return total;
}
int main() {
    int r = bump(3);
    print(r);
    return 0;
}
"""


def _observed_run(**kwargs):
    obs = Observability.recording()
    module = compile_source(SOURCE)
    result = PromotionPipeline(observability=obs, **kwargs).run(module)
    return obs, result


def test_every_phase_and_function_has_a_span():
    obs, result = _observed_run()
    names = [r.name for r in obs.tracer.records]
    for phase in (
        "phase:prepare",
        "phase:profile",
        "phase:promote",
        "phase:re-execute",
    ):
        assert phase in names
    for fn in result.diagnostics.promoted_functions:
        assert f"function:{fn}" in names
        assert f"prepare:{fn}" in names
    assert names[0] == "pipeline"
    # Stage spans nest under their function span.
    by_id = {r.id: r for r in obs.tracer.records}
    stages = [r for r in obs.tracer.records if r.name.startswith("stage:")]
    assert stages
    assert all(by_id[s.parent].name.startswith("function:") for s in stages)


def test_metrics_exactly_match_the_result_report():
    obs, result = _observed_run()
    doc = obs.metrics.as_dict()
    assert doc["pipeline.static_before.loads"]["value"] == result.static_before.loads
    assert doc["pipeline.static_after.stores"]["value"] == result.static_after.stores
    assert doc["pipeline.dynamic_after.loads"]["value"] == result.dynamic_after.loads
    totals = result.totals().as_dict()
    for field, value in totals.items():
        assert doc[f"promotion.{field}"]["value"] == value
    assert doc["pipeline.output_matches"]["value"] == 1


def test_cache_counters_match_cache_stats():
    obs, result = _observed_run()
    doc = obs.metrics.as_dict()
    for kind, hits in result.cache_stats.hits.items():
        assert doc[f"cache.{kind}.hits"]["value"] == hits


def test_diagnostics_observability_section_is_versioned():
    obs, result = _observed_run(jobs=1)
    section = result.diagnostics.as_dict()["observability"]
    assert section["version"] == 1
    assert section["profile_source"] == "interpreter"
    assert section["config"]["jobs"] == 1
    assert section["config"]["use_cache"] is True
    assert section["spans"] == len(obs.tracer.records)
    assert "promotion.webs_promoted" in section["metrics"]


def test_disabled_run_has_no_observability_residue():
    module = compile_source(SOURCE)
    result = PromotionPipeline().run(module)
    assert result.observability is NULL_OBSERVABILITY
    assert result.diagnostics.observability is None
    assert result.diagnostics.as_dict()["observability"] is None


def test_result_carries_the_bundle_for_exporters():
    obs, result = _observed_run()
    assert result.observability is obs


def test_config_stamp_covers_the_execution_layer():
    pipeline = PromotionPipeline(jobs=2, use_cache=False)
    stamp = pipeline.config_stamp()
    assert stamp["jobs"] == 2
    assert stamp["use_cache"] is False
    assert stamp["resilience"] is None
    assert stamp["transactional"] is True


def test_ssa_counters_record_through_the_ambient_registry():
    obs, result = _observed_run()
    doc = obs.metrics.as_dict()
    # This workload promotes webs with compensating stores, so the
    # incremental updater must have reported at least one update.
    assert doc["ssa.incremental.updates"]["value"] >= 1
