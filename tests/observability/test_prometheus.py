"""The Prometheus text-exposition renderer: naming, sample mapping,
grouping, and content negotiation."""

from repro.observability.metrics import MetricsRegistry
from repro.observability.prometheus import (
    CONTENT_TYPE,
    Sample,
    document_samples,
    exposition,
    metric_name,
    registry_samples,
    wants_text,
)


def test_metric_name_sanitizes_to_the_prometheus_charset():
    assert metric_name("router.jobs_total", "repro") == "repro_router_jobs_total"
    assert metric_name("cache.domtree.hits") == "cache_domtree_hits"
    assert metric_name("weird-name with spaces") == "weird_name_with_spaces"
    assert metric_name("7starts_numeric").startswith("_7")


def test_registry_samples_map_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("router.jobs_total", 3)
    registry.set("router.backends.healthy", 2)
    registry.observe("job.duration_ms", 5.0)
    registry.observe("job.duration_ms", 15.0)
    samples = registry_samples(registry.as_dict(), namespace="repro")
    by_name = {s.name: s for s in samples}

    jobs = by_name["repro_router_jobs_total"]
    assert (jobs.kind, jobs.value) == ("counter", 3.0)
    healthy = by_name["repro_router_backends_healthy"]
    assert (healthy.kind, healthy.value) == ("gauge", 2.0)
    assert by_name["repro_job_duration_ms_count"].value == 2.0
    assert by_name["repro_job_duration_ms_sum"].value == 20.0
    assert by_name["repro_job_duration_ms_min"].value == 5.0
    assert by_name["repro_job_duration_ms_max"].value == 15.0


def test_unset_gauges_are_withheld_not_zero():
    registry = MetricsRegistry()
    registry.gauge("pipeline.jobs_used")  # declared, never set
    samples = registry_samples(registry.as_dict())
    assert not any("jobs_used" in s.name for s in samples)


def test_document_samples_flatten_and_skip_non_numeric():
    doc = {
        "workers": 2,
        "breaker": {"state": "closed", "trips": 1},
        "degraded": False,
        "note": "ignored",
        "missing": None,
    }
    samples = document_samples(doc, "repro_daemon", labels={"backend": "b0"})
    names = {s.name: s for s in samples}
    assert names["repro_daemon_workers"].value == 2.0
    assert names["repro_daemon_breaker_trips"].value == 1.0
    assert names["repro_daemon_degraded"].value == 0.0
    assert names["repro_daemon_workers"].labels == {"backend": "b0"}
    assert not any("state" in n or "note" in n or "missing" in n for n in names)


def test_exposition_groups_labelled_series_under_one_type_comment():
    samples = [
        Sample("repro_jobs", "counter", 1.0, {"backend": "a"}),
        Sample("repro_up", "gauge", 1.0),
        Sample("repro_jobs", "counter", 2.0, {"backend": "b"}),
    ]
    body = exposition(samples)
    lines = body.splitlines()
    assert lines == [
        "# TYPE repro_jobs counter",
        'repro_jobs{backend="a"} 1',
        'repro_jobs{backend="b"} 2',
        "# TYPE repro_up gauge",
        "repro_up 1",
    ]
    assert body.endswith("\n")
    assert exposition([]) == ""


def test_label_values_are_escaped():
    sample = Sample("m", "gauge", 1.0, {"k": 'a"b\\c\nd'})
    assert sample.line() == 'm{k="a\\"b\\\\c\\nd"} 1'


def test_wants_text_negotiation():
    assert not wants_text(None)
    assert not wants_text("")
    assert not wants_text("application/json")
    assert not wants_text("*/*")  # JSON stays the default
    assert wants_text("text/plain")
    assert wants_text("text/plain; version=0.0.4")
    assert wants_text("application/openmetrics-text")
    assert "text/plain" in CONTENT_TYPE
