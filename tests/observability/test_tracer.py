"""Span tracer: nesting, records, merge, trace context, and the null
objects."""

import os

import pytest

from repro.observability.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    SpanRecord,
    TraceContext,
    Tracer,
)


def test_spans_nest_and_record_in_enter_order():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("child-a"):
            pass
        with tracer.span("child-b", category="phase", k=1):
            pass
    assert [r.name for r in tracer.records] == ["root", "child-a", "child-b"]
    root_rec = tracer.records[0]
    assert root_rec.parent is None
    assert all(r.parent == root_rec.id for r in tracer.records[1:])
    assert tracer.records[2].category == "phase"
    assert tracer.records[2].attrs == {"k": 1}
    assert root is not None


def test_span_set_chains_and_duration_closes_on_exit():
    tracer = Tracer()
    with tracer.span("s") as span:
        span.set("a", 1).set("b", 2)
        assert tracer.records[0].duration_ms == 0.0
    record = tracer.records[0]
    assert record.attrs == {"a": 1, "b": 2}
    assert record.duration_ms > 0.0
    assert record.pid == os.getpid()


def test_exception_sets_error_type_and_unwinds_stack():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("boom")
    inner = tracer.records[1]
    assert inner.attrs["error_type"] == "ValueError"
    # The stack fully unwound: a new span is a root again.
    with tracer.span("after"):
        pass
    assert tracer.records[2].parent is None


def test_merge_renumbers_and_reparents_roots():
    worker = Tracer()
    with worker.span("function:f"):
        with worker.span("stage:memssa"):
            pass
    exported = worker.export()

    parent = Tracer()
    with parent.span("phase:promote"):
        merged = parent.merge(exported)
    assert [r.name for r in parent.records] == [
        "phase:promote",
        "function:f",
        "stage:memssa",
    ]
    phase, fn, stage = parent.records
    assert fn.parent == phase.id
    assert stage.parent == fn.id
    assert len({r.id for r in parent.records}) == 3
    assert len(merged) == 2


def test_merge_without_open_span_makes_roots():
    worker = Tracer()
    with worker.span("function:f"):
        pass
    parent = Tracer()
    parent.merge(worker.export())
    assert parent.records[0].parent is None


def test_add_record_parents_under_open_span():
    tracer = Tracer()
    with tracer.span("phase:promote"):
        rec = tracer.add_record("attempt:f", duration_ms=5.0, attempt=1)
    assert rec.parent == tracer.records[0].id
    assert rec.duration_ms == 5.0
    assert rec.attrs["attempt"] == 1


def test_record_round_trips_through_dict():
    record = SpanRecord(3, 1, "n", "c", 12.5, 7.25, 99, {"x": "y"})
    clone = SpanRecord.from_dict(record.as_dict())
    assert (clone.id, clone.parent, clone.name, clone.category) == (3, 1, "n", "c")
    assert clone.pid == 99
    assert clone.attrs == {"x": "y"}


def test_trace_context_round_trips_through_traceparent():
    ctx = TraceContext.new()
    assert len(ctx.trace_id) == 32 and ctx.parent_span_id is None

    child = ctx.child()
    assert child.trace_id == ctx.trace_id  # same trace...
    assert child.parent_span_id and len(child.parent_span_id) == 16  # ...new hop

    parsed = TraceContext.from_traceparent(child.to_traceparent())
    assert parsed is not None
    assert parsed.trace_id == ctx.trace_id
    assert parsed.parent_span_id == child.parent_span_id
    assert child.as_dict() == {
        "trace_id": child.trace_id,
        "parent_span_id": child.parent_span_id,
    }


def test_to_traceparent_without_a_parent_mints_a_span_id():
    ctx = TraceContext("ab" * 16)
    parsed = TraceContext.from_traceparent(ctx.to_traceparent())
    assert parsed.trace_id == "ab" * 16
    assert parsed.parent_span_id  # never the forbidden all-zero span


def test_traceparent_parsing_is_case_insensitive():
    header = "00-" + "AB" * 16 + "-" + "CD" * 8 + "-01"
    ctx = TraceContext.from_traceparent(header)
    assert ctx is not None
    assert ctx.trace_id == "ab" * 16
    assert ctx.parent_span_id == "cd" * 8


@pytest.mark.parametrize(
    "header",
    [
        None,
        "",
        "garbage",
        "00-short-1234-01",
        "00-" + "gg" * 16 + "-" + "cd" * 8 + "-01",  # non-hex trace id
        "00-" + "ab" * 16 + "-" + "cd" * 8,  # missing flags
        "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # all-zero trace id
    ],
)
def test_malformed_traceparent_is_none_not_an_error(header):
    assert TraceContext.from_traceparent(header) is None


def test_tracer_stamps_the_trace_id_on_root_spans_only():
    tracer = Tracer(trace_id="ab" * 16)
    with tracer.span("root"):
        with tracer.span("child"):
            pass
    root, child = tracer.records
    assert root.attrs["trace_id"] == "ab" * 16
    assert "trace_id" not in child.attrs


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    span = NULL_TRACER.span("anything", category="x", attr=1)
    assert span is NULL_SPAN
    with span as s:
        assert s.set("k", "v") is s
    assert NULL_TRACER.export() == []
    assert NULL_TRACER.merge([{"id": 1}]) == []
    assert NULL_TRACER.add_record("x") is None
    assert NULL_TRACER.records == []
