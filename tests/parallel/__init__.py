"""Tests for the parallel execution layer."""
