"""Cost-model batch planning: sizing, shapes, and determinism."""

import pytest

from repro.frontend.lower import compile_source
from repro.parallel.batching import (
    OVERSUBSCRIBE,
    CostModel,
    plan_batches,
)

ONE_HUGE_MANY_TINY = """
int acc = 0;
int tiny_a(int k) { return k + 1; }
int tiny_b(int k) { return k + 2; }
int tiny_c(int k) { return k + 3; }
int tiny_d(int k) { return k + 4; }
int huge(int k) {
    for (int i = 0; i < 10; i++) {
        acc += i * k;
        if (acc % 3 == 0) { acc += 1; } else { acc -= 1; }
        for (int j = 0; j < 4; j++) { acc += j; }
        if (acc % 5 == 0) { acc += 2; }
        if (acc % 7 == 0) { acc += 3; }
    }
    return acc;
}
int main() { print(huge(2) + tiny_a(1) + tiny_b(1) + tiny_c(1) + tiny_d(1)); return 0; }
"""


def _units(module):
    return {
        name: CostModel.static_units(function)
        for name, function in module.functions.items()
    }


def test_static_units_rank_a_huge_function_above_tiny_ones():
    module = compile_source(ONE_HUGE_MANY_TINY)
    units = _units(module)
    for tiny in ("tiny_a", "tiny_b", "tiny_c", "tiny_d"):
        assert units["huge"] > units[tiny]


def test_one_huge_function_does_not_drag_tiny_ones_into_its_batch():
    names = ["huge"] + [f"tiny{i}" for i in range(20)]
    weights = {"huge": 100.0, **{name: 1.0 for name in names[1:]}}
    batches = plan_batches(names, weights, jobs=1)
    # The huge function alone exceeds the per-batch target, so its batch
    # is cut immediately and the tiny functions travel separately.
    assert batches[0] == ["huge"]
    assert len(batches) >= 2


def test_empty_module_plans_no_batches():
    assert plan_batches([], {}, jobs=4) == []
    assert plan_batches([], {}, jobs=4, batch_size=3) == []


def test_few_functions_get_singleton_batches():
    names = ["a", "b", "c"]
    weights = {name: 1.0 for name in names}
    assert plan_batches(names, weights, jobs=2) == [["a"], ["b"], ["c"]]


def test_fixed_batch_size_cuts_fixed_chunks_in_order():
    names = [f"f{i}" for i in range(7)]
    weights = {name: 1.0 for name in names}
    batches = plan_batches(names, weights, jobs=2, batch_size=3)
    assert batches == [["f0", "f1", "f2"], ["f3", "f4", "f5"], ["f6"]]


def test_batch_size_one_is_one_task_per_function():
    names = ["a", "b", "c"]
    batches = plan_batches(names, {n: 1.0 for n in names}, jobs=2, batch_size=1)
    assert batches == [["a"], ["b"], ["c"]]


def test_invalid_batch_size_raises():
    with pytest.raises(ValueError):
        plan_batches(["a"], {"a": 1.0}, jobs=1, batch_size=0)


def test_batches_concatenate_to_the_input_in_order():
    names = [f"f{i}" for i in range(23)]
    weights = {name: float(i % 5 + 1) for i, name in enumerate(names)}
    for batch_size in ("auto", 1, 4, 100):
        batches = plan_batches(names, weights, jobs=3, batch_size=batch_size)
        assert [name for batch in batches for name in batch] == names
        assert all(batch for batch in batches)


def test_auto_batching_targets_oversubscribed_slots():
    names = [f"f{i}" for i in range(64)]
    weights = {name: 1.0 for name in names}
    jobs = 4
    batches = plan_batches(names, weights, jobs=jobs)
    # Uniform weights cut into ~jobs * OVERSUBSCRIBE equal batches.
    assert len(batches) == jobs * OVERSUBSCRIBE


def test_plan_is_deterministic():
    names = [f"f{i}" for i in range(31)]
    weights = {name: float((i * 7) % 11 + 1) for i, name in enumerate(names)}
    first = plan_batches(names, weights, jobs=3)
    assert all(
        plan_batches(names, weights, jobs=3) == first for _ in range(5)
    )


def test_cost_model_prefers_measurements_over_the_static_prior():
    model = CostModel()
    sizes = {"fast": 100.0, "slow": 100.0}
    # Same static size, very different measured reality.
    model.observe("slow", 80.0)
    model.observe("fast", 2.0)
    weights = model.weights(sizes)
    assert weights["slow"] > weights["fast"]


def test_cost_model_scales_unmeasured_functions_to_measured_cost():
    model = CostModel()
    model.observe("measured", 50.0)
    weights = model.weights({"measured": 100.0, "fresh": 200.0})
    # 0.5 ms/unit measured -> the unmeasured one lands at 200 * 0.5.
    assert weights["measured"] == pytest.approx(50.0)
    assert weights["fresh"] == pytest.approx(100.0)


def test_cost_model_ewma_tracks_recent_observations():
    model = CostModel()
    model.observe("f", 10.0)
    model.observe("f", 20.0)
    assert model.measured("f") == pytest.approx(15.0)
    model.observe("f", -5.0)  # junk measurements are ignored
    assert model.measured("f") == pytest.approx(15.0)
