"""AnalysisCache: memoization, identity, and mutation invalidation."""

from repro.analysis.dominance import DominatorTree
from repro.analysis.liveness import Liveness
from repro.ir.instructions import Load
from repro.parallel.cache import (
    AnalysisCache,
    CacheStats,
    activate,
    active_cache,
    dominator_tree,
    idf,
    liveness,
)

from tests.support import diamond, simple_loop


def test_domtree_memoized_by_identity():
    _, func = diamond()
    cache = AnalysisCache()
    first = cache.dominator_tree(func)
    second = cache.dominator_tree(func)
    assert first is second
    assert cache.stats.hits["domtree"] == 1
    assert cache.stats.misses["domtree"] == 1


def test_domtree_matches_direct_computation():
    _, func = diamond()
    cached = AnalysisCache().dominator_tree(func)
    direct = DominatorTree.compute(func)
    assert {b.name: (p.name if p else None) for b, p in cached.idom.items()} == {
        b.name: (p.name if p else None) for b, p in direct.idom.items()
    }


def test_cfg_mutation_invalidates_domtree():
    _, func = diamond()
    cache = AnalysisCache()
    first = cache.dominator_tree(func)
    # A new block changes the CFG fingerprint even before it gets edges.
    func.new_block("extra")
    second = cache.dominator_tree(func)
    assert second is not first
    assert cache.stats.misses["domtree"] == 2


def test_idf_cached_per_def_block_set():
    _, func = diamond()
    cache = AnalysisCache()
    domtree = cache.dominator_tree(func)
    defs = [func.find_block("left"), func.find_block("right")]
    first = cache.idf(func, domtree, defs)
    second = cache.idf(func, domtree, list(reversed(defs)))
    assert "join" in {b.name for b in first}
    assert [b.name for b in first] == [b.name for b in second]
    assert cache.stats.hits["idf"] == 1
    # Returned lists are copies: callers may mutate them freely.
    first.append(func.entry)
    third = cache.idf(func, domtree, defs)
    assert func.entry not in third


def test_idf_with_foreign_domtree_bypasses_cache():
    _, func = diamond()
    cache = AnalysisCache()
    foreign = DominatorTree.compute(func)
    defs = [func.find_block("left"), func.find_block("right")]
    cache.idf(func, foreign, defs)
    cache.idf(func, foreign, defs)
    assert cache.stats.hits["idf"] == 0
    assert cache.stats.misses["idf"] == 2


def test_liveness_invalidated_by_instruction_mutation():
    module, func = simple_loop()
    cache = AnalysisCache()
    first = cache.liveness(func)
    assert cache.liveness(func) is first
    # Inserting an instruction leaves the CFG alone but changes the code
    # fingerprint, so liveness must be recomputed.
    block = func.find_block("exitb")
    block.instructions.insert(0, Load(func.new_reg("t"), module.get_global("x")))
    second = cache.liveness(func)
    assert second is not first
    assert cache.stats.misses["liveness"] == 2
    assert cache.stats.hits["liveness"] == 1


def test_liveness_matches_direct_computation():
    _, func = simple_loop()
    cached = AnalysisCache().liveness(func)
    direct = Liveness.compute(func)
    for block in func.blocks:
        assert cached.live_in[block] == direct.live_in[block]
        assert cached.live_out[block] == direct.live_out[block]


def test_invalidate_clears_entries():
    _, func = diamond()
    cache = AnalysisCache()
    first = cache.dominator_tree(func)
    cache.invalidate(func)
    second = cache.dominator_tree(func)
    assert second is not first
    cache.invalidate()
    assert cache.dominator_tree(func) is not second
    assert cache.stats.total_hits == 0


def test_module_accessors_without_active_cache():
    _, func = diamond()
    assert active_cache() is None
    tree = dominator_tree(func)
    assert tree.idom[func.entry] is None
    front = idf(func, tree, [func.find_block("left"), func.find_block("right")])
    assert "join" in {b.name for b in front}
    live = liveness(func)
    assert live.live_in[func.entry] == set()


def test_activate_scopes_the_ambient_cache():
    _, func = diamond()
    cache = AnalysisCache()
    with activate(cache):
        assert active_cache() is cache
        dominator_tree(func)
        dominator_tree(func)
    assert active_cache() is None
    assert cache.stats.hits["domtree"] == 1


def test_activate_nests_and_restores():
    outer, inner = AnalysisCache(), AnalysisCache()
    with activate(outer):
        with activate(inner):
            assert active_cache() is inner
        assert active_cache() is outer
    assert active_cache() is None


def test_cache_stats_absorb_and_dict():
    a = CacheStats()
    a.hit("domtree")
    a.miss("liveness")
    b = CacheStats()
    b.hit("domtree")
    b.hit("idf")
    a.absorb(b)
    assert a.total_hits == 3
    assert a.total_misses == 1
    assert a.hit_rate() == 0.75
    doc = a.as_dict()
    assert doc["total_hits"] == 3
    assert doc["hits"]["domtree"] == 2
    assert CacheStats().hit_rate() == 0.0
