"""Parallel promotion must be bit-identical to serial promotion.

The scheduler merges worker results in module order, so a ``jobs=4`` run
must reproduce a ``jobs=1`` run exactly: same transformed IR, same
Table 1/2 counts, same per-function statistics, and the same diagnostics
JSON byte for byte (after zeroing wall-clock durations, which are not
outputs).
"""

import json

import pytest

from repro.bench.workloads import ORDER, WORKLOADS
from repro.frontend.lower import compile_source
from repro.ir.printer import print_module
from repro.promotion.pipeline import PromotionPipeline


def _run(name, jobs, use_cache=True):
    workload = WORKLOADS[name]
    module = compile_source(workload.source, name)
    pipeline = PromotionPipeline(
        entry=workload.entry, args=list(workload.args), jobs=jobs, use_cache=use_cache
    )
    result = pipeline.run(module)
    diagnostics = result.diagnostics.as_dict()
    for outcome in diagnostics["functions"]:
        outcome["duration_ms"] = 0.0
    return {
        "ir": print_module(module),
        "static": [
            result.static_before.loads,
            result.static_before.stores,
            result.static_after.loads,
            result.static_after.stores,
        ],
        "dynamic": [
            result.dynamic_before.loads,
            result.dynamic_before.stores,
            result.dynamic_after.loads,
            result.dynamic_after.stores,
        ],
        "stats": {fn: s.as_dict() for fn, s in sorted(result.stats.items())},
        "output_matches": result.output_matches,
        "diagnostics_json": json.dumps(diagnostics, sort_keys=True),
    }


@pytest.mark.parametrize("name", ORDER)
def test_parallel_matches_serial(name):
    serial = _run(name, jobs=1)
    parallel = _run(name, jobs=4)
    assert parallel["ir"] == serial["ir"]
    assert parallel["static"] == serial["static"]
    assert parallel["dynamic"] == serial["dynamic"]
    assert parallel["stats"] == serial["stats"]
    assert parallel["output_matches"] is True
    assert parallel["diagnostics_json"] == serial["diagnostics_json"]


def test_cache_does_not_change_outputs():
    cached = _run("compress", jobs=1, use_cache=True)
    uncached = _run("compress", jobs=1, use_cache=False)
    assert cached == uncached
