"""Parallel-to-serial fallback: the cause survives as structured data.

A worker-side failure that makes the pool unusable must not lose its
cause: the pipeline records a ``fallback_reason`` (exception type, first
message line, the function whose result exposed it) in the diagnostics
and completes serially.
"""

import multiprocessing
import os

import pytest

from repro.frontend.lower import compile_source
from repro.memory.aliasing import AliasModel
from repro.parallel.scheduler import SchedulerError
from repro.promotion.pipeline import PromotionPipeline

SOURCE = """
int total = 0;
int step(int k) {
    for (int i = 0; i < 5; i++) total += k;
    return total;
}
int main() {
    int r = step(2);
    print(r);
    return r;
}
"""

#: Recorded at import time in the parent.  Under the fork start method a
#: worker inherits this value but has its own pid, so the factory below
#: fails only inside workers — the parent's serial fallback still works.
_PARENT_PID = os.getpid()


def _worker_hostile_factory(module):
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("alias model refuses to build in a worker")
    return AliasModel.conservative(module)


requires_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-only failure trick needs fork inheritance",
)


@requires_fork
def test_fallback_reason_is_recorded_and_run_completes_serially():
    module = compile_source(SOURCE)
    result = PromotionPipeline(jobs=2, alias_model=_worker_hostile_factory).run(
        module
    )
    diags = result.diagnostics

    reason = diags.fallback_reason
    assert reason is not None
    # The factory raised during the worker's lazy epoch sync, so the
    # task itself failed (warm-pool workers have no initializer to kill);
    # the structured reason names the exception type and the function
    # whose batch exposed the failure.
    assert reason["error_type"] == "RuntimeError"
    assert "alias model refuses" in reason["detail"]
    assert reason["function"] is None or reason["function"] in module.functions
    assert diags.degraded

    # The serial fallback finished the job with the parent-side factory.
    assert sorted(diags.promoted_functions) == ["main", "step"]
    assert result.output_matches
    assert any("falling back to serial" in warning for warning in diags.warnings)


def test_scheduler_error_wrap_carries_structure():
    error = SchedulerError.wrap(
        ValueError("first line\nsecond line"), function="step"
    )
    assert error.as_dict() == {
        "error_type": "ValueError",
        "detail": "first line",
        "function": "step",
    }
    assert "while collecting 'step'" in str(error)
    bare = SchedulerError.wrap(RuntimeError(""))
    assert bare.as_dict()["detail"] == "RuntimeError"
    assert bare.as_dict()["function"] is None
