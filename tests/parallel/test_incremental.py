"""Incremental transport: only changed functions re-ship.

After a warm run, mutating one function and re-running must publish a
*delta* (one pickled blob holding just the changed functions) instead of
re-anchoring the whole module, and unchanged functions whose profile
slice also held must replay from the dispatch cache without a worker.
"""

from repro.frontend.lower import compile_source
from repro.ir.printer import print_module
from repro.parallel.fingerprint import (
    content_fingerprint,
    module_fingerprint,
)
from repro.promotion.pipeline import PromotionPipeline

SOURCE = """
int a = 0;
int b = 0;
int touch_a(int k) {
    for (int i = 0; i < 4; i++) a += k;
    return a;
}
int touch_b(int k) {
    for (int i = 0; i < 3; i++) b += k;
    return b;
}
int main() {
    print(touch_a(2) + touch_b(3));
    return 0;
}
"""

#: ``touch_b`` with a different loop bound; ``touch_a`` and ``main`` are
#: textually identical, and ``main``'s profile is unaffected because its
#: own block counts do not depend on ``touch_b``'s internals.
MUTATED = SOURCE.replace("i < 3", "i < 5")


def _run(source, jobs=2):
    module = compile_source(source, "incremental")
    result = PromotionPipeline(entry="main", jobs=jobs).run(module)
    assert result.diagnostics.fallback_reason is None
    return print_module(module), result.transport_stats


def test_content_fingerprints_isolate_the_mutated_function():
    original = compile_source(SOURCE, "incremental")
    mutated = compile_source(MUTATED, "incremental")
    _, fps_original = module_fingerprint(original)
    _, fps_mutated = module_fingerprint(mutated)
    assert fps_original["touch_b"] != fps_mutated["touch_b"]
    assert fps_original["touch_a"] == fps_mutated["touch_a"]
    assert fps_original["main"] == fps_mutated["main"]


def test_content_fingerprint_is_stable_across_compiles():
    first = compile_source(SOURCE, "incremental")
    second = compile_source(SOURCE, "incremental")
    for name in first.functions:
        assert content_fingerprint(
            first.functions[name]
        ) == content_fingerprint(second.functions[name])


def test_only_the_mutated_function_reships():
    _, warmup = _run(SOURCE)
    total = warmup.functions_shipped + warmup.functions_reused
    assert warmup.functions_shipped > 0

    mutated_ir, transport = _run(MUTATED)

    # One delta entry for touch_b, not a new anchor: per-worker delta
    # installs, and far fewer publication bytes than the warm-up anchor.
    assert transport.installs_full == 0
    assert transport.installs_delta >= 1
    assert 0 < transport.bytes_out < warmup.bytes_out

    # Only the mutated function dispatched; everything else replayed.
    assert transport.functions_shipped == 1
    assert transport.functions_reused == total - 1
    assert transport.batches == 1

    # And the mutated run still matches its own serial promotion.
    serial_ir, _ = _run(MUTATED, jobs=1)
    assert mutated_ir == serial_ir


def test_reverting_the_mutation_replays_from_the_dispatch_cache():
    _, warmup = _run(SOURCE)
    total = warmup.functions_shipped + warmup.functions_reused
    _run(MUTATED)
    _, reverted = _run(SOURCE)
    assert reverted.functions_shipped == 0
    assert reverted.functions_reused == total
    assert reverted.bytes_in == 0
