"""Warm-pool lifecycle: reuse across runs stays byte-identical.

The persistent pool is the tentpole of the batched transport layer: two
consecutive parallel runs of the same module must (a) execute on the
same pool generation (no teardown/respawn between runs), (b) replay the
second run entirely from the dispatch cache (nothing re-shipped), and
(c) both stay byte-identical to a serial run.
"""

import json

import pytest

from repro.frontend.lower import compile_source
from repro.ir.printer import print_module
from repro.parallel.pool import WarmPool, warm_pool
from repro.promotion.pipeline import PromotionPipeline

#: Dedicated to this test file: the warm pool's dispatch cache is
#: process-wide, so sharing a workload with other tests would let their
#: runs pre-populate it and skew the first/second-run accounting below.
SOURCE = """
int warm_acc = 0;
int warm_step(int k) {
    for (int i = 0; i < 6; i++) warm_acc += k * i;
    return warm_acc;
}
int warm_mix(int k) {
    for (int i = 0; i < 4; i++) {
        if (warm_acc % 2 == 0) { warm_acc += k; } else { warm_acc -= 1; }
    }
    return warm_acc;
}
int main() {
    print(warm_step(3) + warm_mix(2));
    return 0;
}
"""


def _run(jobs):
    module = compile_source(SOURCE, "warmpool")
    pipeline = PromotionPipeline(entry="main", jobs=jobs)
    result = pipeline.run(module)
    diagnostics = result.diagnostics.as_dict()
    for outcome in diagnostics["functions"]:
        outcome["duration_ms"] = 0.0
    return {
        "ir": print_module(module),
        "diagnostics": json.dumps(diagnostics, sort_keys=True),
        "transport": result.transport_stats,
        "fallback": result.diagnostics.fallback_reason,
    }


def test_two_consecutive_warm_runs_are_byte_identical_to_serial():
    serial = _run(1)
    first = _run(2)
    second = _run(2)

    assert first["fallback"] is None
    assert second["fallback"] is None
    for run in (first, second):
        assert run["ir"] == serial["ir"]
        assert run["diagnostics"] == serial["diagnostics"]

    # Same pool, no rebuild between the runs.
    assert first["transport"].pool_generation == second["transport"].pool_generation

    # The first warm dispatch shipped everything...
    assert first["transport"].functions_shipped > 0
    assert first["transport"].bytes_out > 0
    # ...and the second replayed it all from the dispatch cache.
    total = first["transport"].functions_shipped + first["transport"].functions_reused
    assert second["transport"].functions_reused == total
    assert second["transport"].functions_shipped == 0
    assert second["transport"].batches == 0
    assert second["transport"].bytes_out == 0
    assert second["transport"].bytes_in == 0


def test_serial_runs_report_no_transport():
    assert _run(1)["transport"] is None


def test_warm_pool_registry_hands_out_one_pool_per_job_count():
    assert warm_pool(2) is warm_pool(2)
    assert warm_pool(2) is not warm_pool(3)


def test_rebuild_bumps_the_generation_and_keeps_the_epoch():
    pool = WarmPool(jobs=1)
    generation = pool.generation
    pool.board()["anchor"] = ("key", b"payload")
    pool.rebuild()
    assert pool.generation == generation + 1
    assert pool.rebuilds == 1
    # The board survives a rebuild: fresh workers re-anchor from it.
    assert pool.board().get("anchor") == ("key", b"payload")
    pool.shutdown()


def test_pool_rejects_nonpositive_worker_counts():
    with pytest.raises(ValueError):
        WarmPool(jobs=0)


def test_as_dict_reports_lifecycle_counters():
    pool = WarmPool(jobs=1)
    doc = pool.as_dict()
    assert doc["jobs"] == 1
    assert doc["generation"] == 0
    assert doc["runs"] == 0
    assert doc["epoch_published"] is False
    pool.shutdown()
