"""Provenance of block frequencies: diags.profile_source in every mode."""

from repro.bench.workloads import WORKLOADS
from repro.frontend.lower import compile_source
from repro.promotion.pipeline import PromotionPipeline


def _compile(name="compress"):
    workload = WORKLOADS[name]
    return workload, compile_source(workload.source, name)


def test_profile_source_interpreter_on_success():
    workload, module = _compile()
    result = PromotionPipeline(entry=workload.entry, args=list(workload.args)).run(
        module
    )
    assert result.diagnostics.profile_source == "interpreter"


def test_profile_source_estimator_when_interpreter_disabled():
    workload, module = _compile()
    pipeline = PromotionPipeline(
        entry=workload.entry, args=list(workload.args), use_interpreter_profile=False
    )
    result = pipeline.run(module)
    assert result.diagnostics.profile_source == "estimator"


def test_profile_source_estimator_when_entry_missing():
    _, module = _compile()
    result = PromotionPipeline(entry="nonesuch").run(module)
    assert result.diagnostics.profile_source == "estimator"


def test_profile_source_fallback_on_step_limit():
    workload, module = _compile()
    pipeline = PromotionPipeline(
        entry=workload.entry, args=list(workload.args), max_steps=10
    )
    result = pipeline.run(module)
    diags = result.diagnostics
    assert diags.profile_source == "estimator-fallback"
    assert any("interpreter limit" in warning for warning in diags.warnings)
    assert diags.as_dict()["profile_source"] == "estimator-fallback"
