"""Scheduler units: job resolution, generic fan-out, worker results."""

import os

import pytest

from repro.parallel.scheduler import FunctionResult, map_tasks, resolve_jobs


def _square(x):
    return x * x


def test_resolve_jobs_defaults_to_cpu_count():
    expected = max(1, os.cpu_count() or 1)
    assert resolve_jobs(None) == expected
    assert resolve_jobs(0) == expected


def test_resolve_jobs_passes_positive_counts_through():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7


def test_resolve_jobs_rejects_negative():
    with pytest.raises(ValueError, match="jobs must be >= 0"):
        resolve_jobs(-2)


def test_map_tasks_serial_path():
    assert map_tasks(_square, [(2,), (3,), (4,)], jobs=1) == [4, 9, 16]


def test_map_tasks_single_task_stays_serial():
    # One task never pays pool start-up cost, whatever jobs says.
    assert map_tasks(_square, [(5,)], jobs=8) == [25]


def test_map_tasks_parallel_path_preserves_order():
    args = [(n,) for n in range(6)]
    assert map_tasks(_square, args, jobs=2) == [n * n for n in range(6)]


def test_function_result_defaults():
    result = FunctionResult("f", FunctionResult.PROMOTED)
    assert result.name == "f"
    assert result.status == "promoted"
    assert result.stage is None
    assert result.payload is None
    assert result.cache_stats is None
    assert result.duration_ms == 0.0
