"""Timing harness: arm fingerprints, BENCH structure, and the perf gate."""

import json

from repro.bench.timing import (
    ARMS,
    GATE_RATIO,
    PARALLEL_FLOOR,
    check_against_baseline,
    run_workload_arm,
    time_suite,
    write_bench,
)


def test_arm_fingerprints_agree_on_one_workload():
    rows = {arm: run_workload_arm("compress", arm, jobs=1) for arm in ARMS}
    prints = {row["fingerprint"] for row in rows.values()}
    assert len(prints) == 1
    # Only the optimized arms carry cache statistics.
    assert rows["baseline"]["cache"] is None
    assert rows["serial"]["cache"]["total_misses"] > 0


def test_time_suite_structure_and_identity():
    bench = time_suite(jobs=2, workloads=["compress", "vortex"])
    assert bench["suite"] == ["compress", "vortex"]
    assert bench["outputs_identical"] is True
    assert set(bench["arms"]) == set(ARMS)
    for arm in ARMS:
        entry = bench["arms"][arm]
        assert set(entry["workloads"]) == {"compress", "vortex"}
        assert entry["total_seconds"] > 0
    for key in ("serial_vs_baseline", "parallel_vs_baseline", "parallel_vs_serial"):
        assert bench["speedup"][key] > 0
    # The parallel arm reports its warm-pool transport accounting.
    parallel = bench["arms"]["parallel"]
    assert parallel["batches"] >= 1
    assert parallel["transport_bytes"] > 0
    assert parallel["pool_warmup_seconds"] >= 0


def test_perf_gate_passes_against_itself():
    bench = {
        "outputs_identical": True,
        "speedup": {"serial_vs_baseline": 2.0, "parallel_vs_baseline": 2.2},
    }
    assert check_against_baseline(bench, bench) == []


def test_perf_gate_tolerates_bounded_regression():
    baseline = {"speedup": {"serial_vs_baseline": 2.0}}
    bench = {
        "outputs_identical": True,
        # Just above the gate: 2.0 * GATE_RATIO.
        "speedup": {"serial_vs_baseline": 2.0 * GATE_RATIO + 0.01},
    }
    assert check_against_baseline(bench, baseline) == []


def test_perf_gate_fails_on_regression():
    baseline = {"speedup": {"serial_vs_baseline": 2.0}}
    bench = {"outputs_identical": True, "speedup": {"serial_vs_baseline": 1.0}}
    failures = check_against_baseline(bench, baseline)
    assert len(failures) == 1
    assert "serial_vs_baseline regressed" in failures[0]


def test_perf_gate_fails_on_divergent_outputs():
    baseline = {"speedup": {}}
    bench = {"outputs_identical": False, "speedup": {}}
    failures = check_against_baseline(bench, baseline)
    assert len(failures) == 1
    assert "different outputs" in failures[0]


def test_perf_gate_ignores_keys_missing_from_measurement():
    baseline = {"speedup": {"serial_vs_baseline": 2.0, "exotic": 9.0}}
    bench = {"outputs_identical": True, "speedup": {"serial_vs_baseline": 2.0}}
    assert check_against_baseline(bench, baseline) == []


def test_parallel_floor_fails_multicore_runs_that_lose_to_serial():
    bench = {
        "outputs_identical": True,
        "cpu_count": 4,
        "speedup": {"parallel_vs_serial": PARALLEL_FLOOR - 0.1},
    }
    # Absolute check: fails even with no parallel keys in the baseline.
    failures = check_against_baseline(bench, {"speedup": {}})
    assert len(failures) == 1
    assert "lost to serial" in failures[0]


def test_parallel_floor_keeps_the_single_core_blind_spot():
    bench = {
        "outputs_identical": True,
        "cpu_count": 1,
        "speedup": {"parallel_vs_serial": 0.5},
    }
    assert check_against_baseline(bench, {"speedup": {}}) == []


def test_parallel_floor_passes_when_parallel_wins():
    bench = {
        "outputs_identical": True,
        "cpu_count": 4,
        "speedup": {"parallel_vs_serial": PARALLEL_FLOOR + 0.3},
    }
    assert check_against_baseline(bench, {"speedup": {}}) == []


def test_write_bench_round_trips(tmp_path):
    bench = {"speedup": {"serial_vs_baseline": 2.0}, "outputs_identical": True}
    path = tmp_path / "BENCH.json"
    write_bench(str(path), bench)
    assert json.loads(path.read_text()) == bench
