"""FunctionPayload/ModulePayload round trips and profile re-keying."""

import pytest

from repro.ir.instructions import Load, Store
from repro.ir.printer import print_module
from repro.parallel.transport import (
    FunctionPayload,
    ModulePayload,
    TransportError,
    export_profile,
    import_profile,
)
from repro.profile.profiles import ProfileData

from tests.support import diamond, simple_loop


def test_module_payload_round_trip():
    module, _ = simple_loop()
    restored = ModulePayload.capture(module).restore()
    assert restored is not module
    assert print_module(restored) == print_module(module)
    # The copy owns its own global storage objects.
    assert restored.get_global("x") is not module.get_global("x")


def test_function_payload_round_trip_preserves_identity():
    module, func = diamond()
    copy = ModulePayload.capture(module).restore()
    copy_func = copy.get_function("diamond")
    # Perturb the copy so install visibly overwrites it.
    copy_func.find_block("left").instructions.pop(0)
    assert print_module(copy) != print_module(module)

    payload = FunctionPayload.capture(func)
    installed = payload.install(copy)
    # Identity preserved: external references to the copy's Function and
    # its blocks stay valid.
    assert installed is copy_func
    assert print_module(copy) == print_module(module)


def test_installed_function_rebinds_globals_to_target_module():
    module, func = diamond()
    copy = ModulePayload.capture(module).restore()
    FunctionPayload.capture(func).install(copy)
    target_x = copy.get_global("x")
    for inst in copy.get_function("diamond").instructions():
        if isinstance(inst, (Load, Store)):
            assert inst.var is target_x
            assert inst.var is not module.get_global("x")


def test_install_into_module_missing_function_fails():
    module, func = diamond()
    copy = ModulePayload.capture(module).restore()
    payload = FunctionPayload.capture(func)
    payload.name = "nonesuch"
    with pytest.raises(TransportError, match="no function nonesuch"):
        payload.install(copy)


def test_install_with_unknown_global_fails():
    module, func = diamond()
    copy = ModulePayload.capture(module).restore()
    del copy.globals["x"]
    with pytest.raises(TransportError, match="unknown global @x"):
        FunctionPayload.capture(func).install(copy)


def test_profile_export_import_round_trip():
    module, func = simple_loop()
    profile = ProfileData()
    for count, block in enumerate(func.blocks, start=1):
        profile.set_freq(block, count * 10)

    mapping = export_profile(profile, module)
    assert set(mapping) == {"loop"}
    assert mapping["loop"]["entry"] == 10

    copy = ModulePayload.capture(module).restore()
    imported = import_profile(mapping, copy)
    for block in copy.get_function("loop").blocks:
        assert imported.freq(block) == mapping["loop"][block.name]


def test_profile_export_skips_detached_blocks():
    module, func = simple_loop()
    profile = ProfileData()
    for block in func.blocks:
        profile.set_freq(block, 5)
    _, orphan_func = diamond()
    profile.set_freq(orphan_func.entry, 99)
    mapping = export_profile(profile, module)
    assert set(mapping) == {"loop"}


def test_export_none_profile_is_empty():
    module, _ = simple_loop()
    assert export_profile(None, module) == {}
