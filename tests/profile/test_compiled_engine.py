"""The compiled engine must match the classic dispatch loop exactly.

``compiled=False`` is the executable specification; ``compiled=True`` is
the optimization the timing harness measures. They must agree on every
observable: output, return value, step accounting, operation counts, the
block-count profile, and errors.
"""

import pytest

from repro.bench.workloads import ORDER, WORKLOADS
from repro.frontend.lower import compile_source
from repro.ir.parser import parse_module
from repro.profile.interp import Interpreter, InterpreterError, InterpreterLimitError

from tests.support import nested_loops, simple_loop


def _run_both(module, entry="main", args=(), **kwargs):
    legacy = Interpreter(module, compiled=False, **kwargs).run(entry, args)
    compiled = Interpreter(module, compiled=True, **kwargs).run(entry, args)
    return legacy, compiled


def _assert_equivalent(legacy, compiled):
    assert compiled.output == legacy.output
    assert compiled.return_value == legacy.return_value
    assert compiled.steps == legacy.steps
    assert compiled.loads == legacy.loads
    assert compiled.stores == legacy.stores
    assert compiled.ptr_loads == legacy.ptr_loads
    assert compiled.ptr_stores == legacy.ptr_stores
    assert compiled.array_loads == legacy.array_loads
    assert compiled.array_stores == legacy.array_stores
    assert compiled.calls == legacy.calls
    assert compiled.copies == legacy.copies
    # Block names repeat across functions; key the profile comparison by
    # (function, block).
    def by_name(result):
        return {
            (b.function.name, b.name): count
            for b, count in result.block_counts.items()
        }

    assert by_name(compiled) == by_name(legacy)


@pytest.mark.parametrize("name", ORDER)
def test_engines_agree_on_every_workload(name):
    workload = WORKLOADS[name]
    legacy = Interpreter(compile_source(workload.source, name), compiled=False).run(
        workload.entry, workload.args
    )
    compiled = Interpreter(compile_source(workload.source, name), compiled=True).run(
        workload.entry, workload.args
    )
    _assert_equivalent(legacy, compiled)


def test_engines_agree_on_loops():
    for factory in (simple_loop, nested_loops):
        module, func = factory()
        legacy, compiled = _run_both(module, entry=func.name)
        _assert_equivalent(legacy, compiled)


def test_engines_agree_on_globals_snapshot():
    module, func = simple_loop()
    legacy, compiled = _run_both(module, entry=func.name)
    assert compiled.globals_snapshot() == legacy.globals_snapshot()


def test_engines_raise_the_same_runtime_error():
    module = parse_module(
        """
        func @main() {
        entry:
          %q = ldp 5
          ret %q
        }
        """
    )
    with pytest.raises(InterpreterError) as legacy_exc:
        Interpreter(module, compiled=False).run()
    with pytest.raises(InterpreterError) as compiled_exc:
        Interpreter(module, compiled=True).run()
    assert str(compiled_exc.value) == str(legacy_exc.value)


def test_engines_enforce_the_same_step_limit():
    module, func = simple_loop(trip_count=1000)
    with pytest.raises(InterpreterLimitError):
        Interpreter(module, max_steps=50, compiled=False).run(func.name)
    with pytest.raises(InterpreterLimitError):
        Interpreter(module, max_steps=50, compiled=True).run(func.name)


def test_engines_agree_with_externals():
    module = parse_module(
        """
        func @main() {
        entry:
          %a = call @ext(7)
          print %a
          ret %a
        }
        """
    )
    legacy, compiled = _run_both(module, externals={"ext": lambda x: x + 1})
    _assert_equivalent(legacy, compiled)
