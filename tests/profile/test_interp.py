import pytest

from repro.ir.parser import parse_module
from repro.profile.interp import Interpreter, InterpreterError, run_module

from tests.support import simple_loop


def test_arithmetic_and_return():
    module = parse_module(
        """
        func @main() {
        entry:
          %a = add 2, 3
          %b = mul %a, %a
          %c = sub %b, 5
          ret %c
        }
        """
    )
    assert run_module(module).return_value == 20


def test_division_truncates_toward_zero():
    module = parse_module(
        """
        func @main() {
        entry:
          %a = div -7, 2
          %b = rem -7, 2
          %c = div 7, -2
          print %a, %b, %c
          ret
        }
        """
    )
    assert run_module(module).output == [(-3, -1, -3)]


def test_division_by_zero_is_total():
    module = parse_module(
        """
        func @main() {
        entry:
          %a = div 5, 0
          %b = rem 5, 0
          print %a, %b
          ret
        }
        """
    )
    assert run_module(module).output == [(0, 0)]


def test_comparisons_and_branches():
    module = parse_module(
        """
        func @main() {
        entry:
          %c = lt 3, 5
          br %c, yes, no
        yes:
          print 1
          ret
        no:
          print 0
          ret
        }
        """
    )
    assert run_module(module).output == [(1,)]


def test_loop_counts_and_profile():
    module, func = simple_loop(trip_count=10)
    result = run_module(module, entry="loop")
    assert result.loads == 10
    assert result.stores == 10
    assert result.block_counts[func.find_block("body")] == 10
    assert result.block_counts[func.find_block("header")] == 11
    assert result.block_counts[func.find_block("exitb")] == 1


def test_globals_persist_across_calls():
    module = parse_module(
        """
        module m
        global @x = 5
        func @bump() {
        entry:
          %t = ld @x
          %t2 = add %t, 1
          st @x, %t2
          ret
        }
        func @main() {
        entry:
          %r1 = call @bump()
          %r2 = call @bump()
          %t = ld @x
          ret %t
        }
        """
    )
    result = run_module(module)
    assert result.return_value == 7
    assert result.globals_snapshot()["x"] == 7
    assert result.calls == 2


def test_locals_fresh_per_activation():
    module = parse_module(
        """
        module m
        func @f(%n) {
          local @y = 100
        entry:
          st @y, %n
          %c = gt %n, 0
          br %c, rec, done
        rec:
          %m = sub %n, 1
          %r = call @f(%m)
          jmp done
        done:
          %t = ld @y
          ret %t
        }
        func @main() {
        entry:
          %r = call @f(3)
          ret %r
        }
        """
    )
    assert run_module(module).return_value == 3


def test_pointers_and_arrays():
    module = parse_module(
        """
        module m
        global @x = 1
        array @A[4] = 7
        func @main() {
        entry:
          %p = addr @x
          stp %p, 42
          %t = ldp %p
          %q = elem @A, 2
          stp %q, %t
          %u = lda @A, 2
          %v = lda @A, 0
          print %t, %u, %v
          ret
        }
        """
    )
    result = run_module(module)
    assert result.output == [(42, 42, 7)]
    assert result.ptr_loads == 1 and result.ptr_stores == 2
    assert result.array_loads == 2


def test_array_bounds_checked():
    module = parse_module(
        """
        module m
        array @A[2] = 0
        func @main() {
        entry:
          %t = lda @A, 5
          ret
        }
        """
    )
    with pytest.raises(InterpreterError, match="out of bounds"):
        run_module(module)


def test_phi_parallel_evaluation_swap():
    # Classic swap: both phis must read the *old* values.
    module = parse_module(
        """
        func @main() {
        entry:
          jmp header
        header:
          %a = phi [entry: 1, body: %b]
          %b = phi [entry: 2, body: %a]
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 3
          br %c, body, done
        body:
          %i2 = add %i, 1
          jmp header
        done:
          print %a, %b
          ret
        }
        """
    )
    # After 3 swaps: (2, 1).
    assert run_module(module).output == [(2, 1)]


def test_step_budget_enforced():
    module = parse_module(
        """
        func @main() {
        entry:
          jmp spin
        spin:
          jmp spin
        }
        """
    )
    with pytest.raises(InterpreterError, match="steps"):
        Interpreter(module, max_steps=1000).run()


def test_recursion_budget_enforced():
    module = parse_module(
        """
        func @main() {
        entry:
          %r = call @main()
          ret
        }
        """
    )
    with pytest.raises(InterpreterError, match="recursion"):
        run_module(module)


def test_unknown_callee_rejected_unless_registered():
    module = parse_module(
        """
        func @main() {
        entry:
          %r = call @mystery(4)
          ret %r
        }
        """
    )
    with pytest.raises(InterpreterError, match="unknown callee"):
        run_module(module)
    result = Interpreter(module, externals={"mystery": lambda a: a * 2}).run()
    assert result.return_value == 8


def test_missing_args_default_to_zero():
    module = parse_module(
        """
        func @f(%a, %b) {
        entry:
          %t = add %a, %b
          ret %t
        }
        func @main() {
        entry:
          %r = call @f(5)
          ret %r
        }
        """
    )
    assert run_module(module).return_value == 5


def test_shift_masking():
    module = parse_module(
        """
        func @main() {
        entry:
          %a = shl 1, 65
          %b = shr -8, 1
          print %a, %b
          ret
        }
        """
    )
    assert run_module(module).output == [(2, -4)]
