"""Interpreter corners: externals, copies, snapshots, frames."""

import pytest

from repro.ir.parser import parse_module
from repro.profile.interp import Interpreter, InterpreterError, run_module


def test_external_returning_none_becomes_zero():
    module = parse_module(
        """
        func @main() {
        entry:
          %r = call @sink(9)
          ret %r
        }
        """
    )
    seen = []
    result = Interpreter(module, externals={"sink": seen.append}).run()
    assert result.return_value == 0
    assert seen == [9]


def test_copies_counted():
    module = parse_module(
        """
        func @main() {
        entry:
          %a = copy 1
          %b = copy %a
          ret %b
        }
        """
    )
    result = run_module(module)
    assert result.copies == 2


def test_globals_snapshot_scalars_only():
    module = parse_module(
        """
        module m
        global @x = 3
        array @A[4] = 9
        global @s.f = 1
        func @main() {
        entry:
          st @x, 5
          ret
        }
        """
    )
    snapshot = run_module(module).globals_snapshot()
    assert snapshot == {"x": 5, "s.f": 1}


def test_extra_call_arguments_ignored():
    module = parse_module(
        """
        func @f(%a) {
        entry:
          ret %a
        }
        func @main() {
        entry:
          %r = call @f(1, 2, 3)
          ret %r
        }
        """
    )
    assert run_module(module).return_value == 1


def test_arithmetic_on_pointer_rejected():
    module = parse_module(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          %p = addr @x
          %b = add %p, 1
          ret %b
        }
        """
    )
    with pytest.raises(InterpreterError, match="expected integer"):
        run_module(module)


def test_deref_of_integer_rejected():
    module = parse_module(
        """
        func @main() {
        entry:
          %t = ldp 5
          ret %t
        }
        """
    )
    with pytest.raises(InterpreterError, match="expected pointer"):
        run_module(module)


def test_block_counts_cover_every_executed_block():
    module = parse_module(
        """
        func @main(%c) {
        entry:
          br %c, a, b
        a:
          ret 1
        b:
          ret 2
        }
        """
    )
    result = run_module(module, args=[1])
    counted = {b.name for b in result.block_counts}
    assert counted == {"entry", "a"}


def test_steps_monotone_with_work():
    module_small = parse_module("func @main() {\nentry:\n  ret 0\n}")
    module_large = parse_module(
        """
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 50
          br %c, body, out
        body:
          %i2 = add %i, 1
          jmp h
        out:
          ret 0
        }
        """
    )
    assert run_module(module_large).steps > run_module(module_small).steps


def test_elem_pointer_to_specific_cell():
    module = parse_module(
        """
        module m
        array @A[3] = 0
        func @main() {
        entry:
          %p = elem @A, 1
          stp %p, 42
          %a0 = lda @A, 0
          %a1 = lda @A, 1
          print %a0, %a1
          ret
        }
        """
    )
    assert run_module(module).output == [(0, 42)]


def test_elem_bounds_checked_at_creation():
    module = parse_module(
        """
        module m
        array @A[3] = 0
        func @main() {
        entry:
          %p = elem @A, 7
          ret
        }
        """
    )
    with pytest.raises(InterpreterError, match="out of bounds"):
        run_module(module)
