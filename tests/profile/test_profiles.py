from repro.profile.estimator import estimate_profile
from repro.profile.interp import run_module
from repro.profile.profiles import ProfileData

from tests.support import nested_loops, simple_loop


def test_profile_from_execution():
    module, func = simple_loop(trip_count=4)
    result = run_module(module, entry="loop")
    profile = ProfileData.from_execution(result)
    assert profile.freq(func.find_block("body")) == 4
    assert profile.freq(func.find_block("header")) == 5
    assert profile.freq_of(func.find_block("body").instructions[0]) == 4


def test_unknown_block_is_zero():
    module, func = simple_loop()
    profile = ProfileData()
    assert profile.freq(func.find_block("body")) == 0


def test_set_and_scale():
    module, func = simple_loop()
    profile = ProfileData()
    body = func.find_block("body")
    profile.set_freq(body, 100)
    assert profile.scale(0.5).freq(body) == 50


def test_total_and_covered():
    module, func = simple_loop(trip_count=2)
    result = run_module(module, entry="loop")
    profile = ProfileData.from_execution(result)
    assert profile.total(func.blocks) == 1 + 3 + 2 + 1
    assert profile.covered(module) == 4


def test_estimator_orders_by_loop_depth():
    module, func = nested_loops()
    profile = estimate_profile(module)
    entry = profile.freq(func.find_block("entry"))
    outer = profile.freq(func.find_block("olatch"))
    inner = profile.freq(func.find_block("ibody"))
    assert entry < outer < inner


def test_estimator_covers_all_blocks():
    module, func = nested_loops()
    profile = estimate_profile(module)
    for block in func.blocks:
        assert profile.freq(block) >= 1
