"""Dummy aliased-load policy (§4.4's summarization for the parent).

The dummy tells the enclosing interval that memory must hold the
variable's value at the preheader.  It must appear exactly when the
paper says: after promoting a web that still contains aliased loads, or
when a web with references is not promoted at all — and never without a
live-in resource or for the root region.

These tests run the promotion driver with cleanup suppressed so the
dummies are observable.
"""

from repro.analysis.intervals import normalize_for_promotion
from repro.frontend.lower import compile_source
from repro.ir import instructions as I
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.profile.interp import Interpreter
from repro.profile.profiles import ProfileData
from repro.promotion.driver import PromotionOptions, promote_function
from repro.ssa.construct import construct_ssa


def _promote_raw(src, options=None):
    """Lower, prepare, profile, and promote — no cleanup pass."""
    module = compile_source(src)
    trees = {}
    for f in module.functions.values():
        construct_ssa(f)
        trees[f.name] = normalize_for_promotion(f)
    run = Interpreter(module).run("main", [])
    profile = ProfileData.from_execution(run)
    model = AliasModel.conservative(module)
    for f in module.functions.values():
        mssa = build_memory_ssa(f, model)
        promote_function(f, mssa, profile, trees[f.name], options)
    return module


def _dummies(module, fname="main"):
    return [
        i
        for i in module.functions[fname].instructions()
        if isinstance(i, I.DummyAliasedLoad)
    ]


def test_promoted_web_with_aliased_loads_gets_dummy():
    module = _promote_raw(
        """
        int x = 0;
        void foo() { x = x * 2; }
        int main() {
            for (int i = 0; i < 100; i++) {
                x++;
                if (x == 5) foo();
            }
            return x;
        }
        """
    )
    dummies = _dummies(module)
    assert any(d.var.name == "x" for d in dummies)
    # Placed in the loop preheader (outside the loop, before its end).
    for d in dummies:
        assert d.block.terminator is not None


def test_clean_promoted_web_gets_no_dummy():
    module = _promote_raw(
        """
        int x = 0;
        int main() {
            for (int i = 0; i < 50; i++) x += i;
            return x;
        }
        """
    )
    assert _dummies(module) == []


def test_skipped_web_with_refs_gets_dummy():
    # A loop where promotion is unprofitable (hot call every iteration)
    # must still summarize its memory expectation for the parent.
    module = _promote_raw(
        """
        int x = 0;
        void hot() { x = x + 1; }
        int main() {
            for (int i = 0; i < 60; i++) {
                x++;
                hot();
            }
            return x;
        }
        """,
        options=PromotionOptions(promote_root=False),
    )
    assert any(d.var.name == "x" for d in _dummies(module))


def test_untouched_variable_gets_no_dummy():
    module = _promote_raw(
        """
        int x = 0;
        int quiet = 7;
        int main() {
            for (int i = 0; i < 30; i++) x += i;
            return x;
        }
        """
    )
    assert all(d.var.name != "quiet" for d in _dummies(module))


def test_dummies_removed_by_pipeline_cleanup():
    from repro.promotion.pipeline import PromotionPipeline

    src = """
    int x = 0;
    void foo() { x = x * 2; }
    int main() {
        for (int i = 0; i < 100; i++) {
            x++;
            if (x == 5) foo();
        }
        return x;
    }
    """
    module = compile_source(src)
    PromotionPipeline().run(module)
    assert _dummies(module) == []
