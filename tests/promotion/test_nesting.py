"""Promotion through deep interval nesting: the recursive propagation
story ("relying on the recursive promotion of the outer interval to
propagate these loads and stores to the appropriate interval")."""

from repro.frontend.lower import compile_source
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline

THREE_DEEP = """
int acc = 0;
int main() {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 5; j++) {
            for (int k = 0; k < 6; k++) {
                acc += i + j + k;
            }
        }
    }
    print(acc);
    return acc % 256;
}
"""


def test_three_level_nest_hoists_to_outermost():
    baseline = run_module(compile_source(THREE_DEEP))
    module = compile_source(THREE_DEEP)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    # 120 iterations × (load+store) collapse to an entry load and a
    # single flush near the print/ret: recursive propagation carried the
    # boundary ops from the innermost loop all the way out.
    assert result.dynamic_after.total <= 4
    assert result.dynamic_before.total == 242  # 120 ld/st pairs + print + ret reads


def test_inner_call_blocks_only_inner_level():
    src = """
    int hot = 0;
    int audit_count = 0;
    void audit() { audit_count++; }
    int main() {
        for (int i = 0; i < 10; i++) {
            for (int j = 0; j < 10; j++) {
                hot += j;
            }
            audit();     // kills @hot at the outer level only
        }
        print(hot, audit_count);
        return 0;
    }
    """
    baseline = run_module(compile_source(src))
    module = compile_source(src)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    # The inner loop (100 iterations) is clean: hot lives in a register
    # there; the outer level pays one flush + reload per audit call.
    # ~100 load/store pairs drop to the ~10 outer-level compensations.
    assert result.dynamic_after.total <= 45
    assert result.dynamic_before.total >= 200


def test_five_level_nest_correct():
    src = """
    int x = 1;
    int main() {
        for (int a = 0; a < 2; a++)
          for (int b = 0; b < 2; b++)
            for (int c = 0; c < 2; c++)
              for (int d = 0; d < 2; d++)
                for (int e = 0; e < 2; e++)
                  x = (x * 3 + a + b + c + d + e) % 10007;
        print(x);
        return 0;
    }
    """
    baseline = run_module(compile_source(src))
    module = compile_source(src)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    assert run_module(module).output == baseline.output
    assert result.dynamic_after.total <= 4
