"""End-to-end reproductions of the paper's worked examples.

* Figure 1 / §4.1: two sequential loops; promotion in the first loop
  reduces its 200 memory operations to one load and one store, and the
  root scope correctly declines to promote across the call loop.
* Figures 7/8: a cold call inside a hot loop; the store sinks next to
  the call, a reload follows it, and the hot path carries no memory ops.
"""

from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline

FIGURE1 = """
module m
global @x = 0
func @main() {
entry:
  jmp h1
h1:
  %i = phi [entry: 0, b1: %i2]
  %c1 = lt %i, 100
  br %c1, b1, pre2
b1:
  %t1 = ld @x
  %t2 = add %t1, 1
  st @x, %t2
  %i2 = add %i, 1
  jmp h1
pre2:
  jmp h2
h2:
  %j = phi [pre2: 0, b2: %j2]
  %c2 = lt %j, 10
  br %c2, b2, done
b2:
  %r = call @foo()
  %j2 = add %j, 1
  jmp h2
done:
  %t9 = ld @x
  ret %t9
}
func @foo() {
entry:
  %t = ld @x
  %u = rem %t, 2
  ret %u
}
"""

FIGURE7 = """
module m
global @x = 0
func @main() {
entry:
  jmp h
h:
  %i = phi [entry: 0, latch: %i2]
  %c = lt %i, 100
  br %c, body, done
body:
  %t1 = ld @x
  %t2 = add %t1, 1
  st @x, %t2
  %cc = lt %t2, 30
  br %cc, cold, latch
cold:
  %r = call @foo()
  jmp latch
latch:
  %i2 = add %i, 1
  jmp h
done:
  %t9 = ld @x
  ret %t9
}
func @foo() {
entry:
  %t = ld @x
  %u = mul %t, 2
  st @x, %u
  ret
}
"""


def _ops_in(func, names):
    blocks = {n: [] for n in names}
    for block in func.blocks:
        if block.name in blocks:
            blocks[block.name] = [
                i for i in block.instructions if isinstance(i, (I.Load, I.Store))
            ]
    return blocks


def test_figure1_loop_reduced_to_load_and_store():
    module = parse_module(FIGURE1)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    main = module.get_function("main")

    # The first loop's body carries no memory operations any more.
    ops = _ops_in(main, ["b1", "h1"])
    assert ops["b1"] == [] and ops["h1"] == []

    # Exactly one load before the loop and one store after it.
    entry_loads = [
        i for i in main.find_block("entry").instructions if isinstance(i, I.Load)
    ]
    assert len(entry_loads) == 1
    pre2_stores = [
        i for i in main.find_block("pre2").instructions if isinstance(i, I.Store)
    ]
    assert len(pre2_stores) == 1


def test_figure1_dynamic_counts():
    module = parse_module(FIGURE1)
    result = PromotionPipeline().run(module)
    # Loop 1 executed 100 load/store pairs before; the paper's promotion
    # leaves 2 ops for the whole loop.  The remaining dynamic loads come
    # from foo()'s 10 calls and the final read.
    assert result.dynamic_before.loads == 100 + 10 + 1
    assert result.dynamic_before.stores == 100
    assert result.dynamic_after.stores <= 2
    assert result.dynamic_after.loads <= 12
    assert result.dynamic_after.total <= 14


def test_figure1_root_scope_declines_promotion_across_calls():
    # "Although we have reduced the number of loads and stores from 200 to
    # 21, we will introduce redundant loads and stores in the second loop"
    # — the interval approach must NOT insert a reload in the call loop.
    module = parse_module(FIGURE1)
    PromotionPipeline().run(module)
    main = module.get_function("main")
    b2 = main.find_block("b2")
    assert not any(isinstance(i, (I.Load, I.Store)) for i in b2.instructions)


def test_figure7_partial_promotion_shape():
    module = parse_module(FIGURE7)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    main = module.get_function("main")

    # Hot path (body, latch, h) free of memory operations.
    for name in ("body", "latch", "h"):
        block = main.find_block(name)
        assert not any(
            isinstance(i, (I.Load, I.Store)) for i in block.instructions
        ), name

    # The cold block gained the flush store before the call and the
    # reload after it (Figure 8).
    cold = main.find_block("cold")
    kinds = [type(i).__name__ for i in cold.instructions]
    assert kinds.index("Store") < kinds.index("Call") < kinds.index("Load")


def test_figure7_dynamic_improvement():
    module = parse_module(FIGURE7)
    result = PromotionPipeline().run(module)
    assert result.output_matches
    # 100 hot iterations collapse; only cold iterations (x < 30) pay.
    assert result.dynamic_after.loads < result.dynamic_before.loads / 5
    assert result.dynamic_after.stores < result.dynamic_before.stores / 5


def test_figure7_semantics_equivalence():
    baseline = run_module(parse_module(FIGURE7))
    module = parse_module(FIGURE7)
    PromotionPipeline().run(module)
    promoted = run_module(module)
    assert promoted.return_value == baseline.return_value
    assert promoted.globals_snapshot() == baseline.globals_snapshot()
