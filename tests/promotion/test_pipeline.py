"""Pipeline-level behavioural tests: semantics preservation, options, and
edge cases (pointers, exposed locals, struct fields, irreducible CFGs)."""

import pytest

from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.profile.interp import run_module
from repro.promotion.driver import PromotionOptions
from repro.promotion.pipeline import PromotionPipeline, improvement

from tests.support import irreducible


def _run_both(text, entry="main", args=()):
    baseline = run_module(parse_module(text), entry=entry, args=list(args))
    module = parse_module(text)
    result = PromotionPipeline(entry=entry, args=list(args)).run(module)
    after = run_module(module, entry=entry, args=list(args))
    assert after.output == baseline.output
    assert after.return_value == baseline.return_value
    assert after.globals_snapshot() == baseline.globals_snapshot()
    assert result.output_matches
    return module, result, baseline, after


def test_improvement_formula():
    assert improvement(100, 75) == 25.0
    assert improvement(100, 114) == pytest.approx(-14.0)
    assert improvement(0, 5) == 0.0


def test_simple_loop_promoted():
    module, result, before, after = _run_both(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 50
          br %c, body, out
        body:
          %t = ld @x
          %t2 = add %t, 3
          st @x, %t2
          %i2 = add %i, 1
          jmp h
        out:
          %r = ld @x
          ret %r
        }
        """
    )
    assert after.globals_snapshot()["x"] == 150
    assert result.dynamic_after.total <= 3
    assert result.dynamic_before.total == 101


def test_pointer_aliasing_preserved():
    # A pointer store may hit the promoted global: the compensation code
    # must keep register and memory consistent.
    module, result, before, after = _run_both(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          %p = addr @x
          jmp h
        h:
          %i = phi [entry: 0, latch: %i2]
          %c = lt %i, 20
          br %c, body, out
        body:
          %t = ld @x
          %t2 = add %t, 1
          st @x, %t2
          %cc = eq %i, 10
          br %cc, hit, latch
        hit:
          stp %p, 1000
          jmp latch
        latch:
          %i2 = add %i, 1
          jmp h
        out:
          %r = ld @x
          print %r
          ret %r
        }
        """
    )
    # 11 increments, then 1000, then 9 more increments.
    assert after.output == [(1009,)]


def test_pointer_load_sees_promoted_value():
    module, result, before, after = _run_both(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          %p = addr @x
          jmp h
        h:
          %i = phi [entry: 0, latch: %i2]
          %c = lt %i, 10
          br %c, body, out
        body:
          %t = ld @x
          %t2 = add %t, 1
          st @x, %t2
          %cc = eq %i, 5
          br %cc, peek, latch
        peek:
          %v = ldp %p
          print %v
          jmp latch
        latch:
          %i2 = add %i, 1
          jmp h
        out:
          ret
        }
        """
    )
    assert after.output == [(6,)]


def test_recursive_function_with_global():
    _run_both(
        """
        module m
        global @depth = 0
        func @rec(%n) {
        entry:
          %t = ld @depth
          %t2 = add %t, 1
          st @depth, %t2
          %c = gt %n, 0
          br %c, go, done
        go:
          %m = sub %n, 1
          %r = call @rec(%m)
          jmp done
        done:
          ret %n
        }
        func @main() {
        entry:
          %r = call @rec(5)
          %d = ld @depth
          print %d
          ret
        }
        """
    )


def test_struct_field_promoted():
    module, result, before, after = _run_both(
        """
        module m
        global @s.count = 0
        global @s.limit = 7
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %lim = ld @s.limit
          %c = lt %i, %lim
          br %c, body, out
        body:
          %t = ld @s.count
          %t2 = add %t, 2
          st @s.count, %t2
          %i2 = add %i, 1
          jmp h
        out:
          %r = ld @s.count
          ret %r
        }
        """
    )
    assert after.return_value == 14
    assert result.dynamic_after.total < result.dynamic_before.total


def test_exposed_local_promotable_when_calls_absent():
    module, result, before, after = _run_both(
        """
        module m
        func @main() {
          local @acc = 0
        entry:
          %p = addr @acc
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 30
          br %c, body, out
        body:
          %t = ld @acc
          %t2 = add %t, %i
          st @acc, %t2
          %i2 = add %i, 1
          jmp h
        out:
          %r = ldp %p
          ret %r
        }
        """
    )
    assert after.return_value == sum(range(30))
    main = module.get_function("main")
    body = main.find_block("body")
    assert not any(isinstance(i, (I.Load, I.Store)) for i in body.instructions)


def test_irreducible_cfg_promotes_safely():
    module, func = irreducible()
    baseline = run_module(module, entry="irr")
    module2, func2 = irreducible()
    result = PromotionPipeline(entry="irr").run(module2)
    after = run_module(module2, entry="irr")
    assert after.return_value == baseline.return_value
    assert result.output_matches


def test_multiple_globals_independent():
    module, result, before, after = _run_both(
        """
        module m
        global @a = 0
        global @b = 100
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 25
          br %c, body, out
        body:
          %ta = ld @a
          %ta2 = add %ta, 1
          st @a, %ta2
          %tb = ld @b
          %tb2 = sub %tb, 2
          st @b, %tb2
          %i2 = add %i, 1
          jmp h
        out:
          ret
        }
        """
    )
    assert after.globals_snapshot() == {"a": 25, "b": 50}
    assert result.dynamic_after.total <= 6


def test_option_no_store_removal():
    text = """
    module m
    global @x = 0
    func @main() {
    entry:
      jmp h
    h:
      %i = phi [entry: 0, body: %i2]
      %c = lt %i, 50
      br %c, body, out
    body:
      %t = ld @x
      %t2 = add %t, 3
      st @x, %t2
      %i2 = add %i, 1
      jmp h
    out:
      %r = ld @x
      ret %r
    }
    """
    module = parse_module(text)
    options = PromotionOptions(remove_stores=False)
    result = PromotionPipeline(options=options).run(module)
    assert result.output_matches
    # Loads went away, stores stayed: "a variable resides in memory and
    # in a virtual register simultaneously".
    assert result.dynamic_after.loads < result.dynamic_before.loads
    assert result.dynamic_after.stores == result.dynamic_before.stores


def test_option_no_root_promotion():
    text = """
    module m
    global @x = 0
    func @main() {
    entry:
      %t = ld @x
      %t2 = add %t, 1
      st @x, %t2
      %u = ld @x
      ret %u
    }
    """
    module = parse_module(text)
    options = PromotionOptions(promote_root=False)
    result = PromotionPipeline(options=options).run(module)
    assert result.output_matches
    # Straight-line code untouched without the root region.
    assert result.static_after.loads == result.static_before.loads


def test_profile_blind_option_still_correct():
    module = parse_module(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, latch: %i2]
          %c = lt %i, 10
          br %c, body, out
        body:
          %t = ld @x
          %t2 = add %t, 1
          st @x, %t2
          %r = call @foo()
          jmp latch
        latch:
          %i2 = add %i, 1
          jmp h
        out:
          %u = ld @x
          ret %u
        }
        func @foo() {
        entry:
          ret
        }
        """
    )
    options = PromotionOptions(require_profit=False)
    result = PromotionPipeline(options=options).run(module)
    # Promoting against the profile's advice is allowed to be slower but
    # must stay correct.
    assert result.output_matches


def test_stats_populated():
    module = parse_module(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 50
          br %c, body, out
        body:
          %t = ld @x
          %t2 = add %t, 3
          st @x, %t2
          %i2 = add %i, 1
          jmp h
        out:
          ret
        }
        """
    )
    result = PromotionPipeline().run(module)
    totals = result.totals()
    assert totals.webs_promoted >= 1
    assert totals.loads_replaced >= 1
    assert totals.reg_phis_created >= 1
    assert "dynamic loads" in result.report()
