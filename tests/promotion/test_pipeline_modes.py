"""Pipeline configuration paths not covered elsewhere: the static
estimator profile, modules without an entry point, mem2reg opt-out, and
no-verify mode."""


from repro.frontend.lower import compile_source
from repro.ir.parser import parse_module
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline

SRC = """
int total = 0;
int helper(int n) {
    for (int i = 0; i < 10; i++) total += n;
    return total;
}
int main() {
    for (int outer = 0; outer < 5; outer++) {
        helper(outer);
    }
    return total;
}
"""


def test_estimator_profile_mode():
    baseline = run_module(compile_source(SRC)).return_value
    module = compile_source(SRC)
    result = PromotionPipeline(use_interpreter_profile=False).run(module)
    # No interpreter run: dynamic counts are not collected...
    assert result.dynamic_before.total == 0
    assert result.profile is not None
    # ...but the transformation is still correct.
    assert run_module(module).return_value == baseline


def test_module_without_entry_uses_estimator():
    module = parse_module(
        """
        module m
        global @x = 0
        func @lib() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 10
          br %c, body, out
        body:
          %t = ld @x
          st @x, %t
          %i2 = add %i, 1
          jmp h
        out:
          ret
        }
        """
    )
    result = PromotionPipeline().run(module)  # no @main anywhere
    assert result.output_matches  # vacuously: nothing executed
    assert result.static_after.total >= 0
    baseline = run_module(module, entry="lib")
    assert baseline.return_value == 0


def test_mem2reg_opt_out_keeps_locals_in_memory():
    source = """
    int main() {
        int acc = 0;
        for (int i = 0; i < 8; i++) acc += i;
        return acc;
    }
    """
    module = compile_source(source)
    result = PromotionPipeline(run_mem2reg=False).run(module)
    assert result.output_matches
    # Promotion itself must then carry the locals: acc/i were memory
    # variables and the loop still loses its per-iteration traffic.
    assert result.dynamic_after.total < result.dynamic_before.total
    assert run_module(module).return_value == 28


def test_verify_disabled_still_correct():
    module = compile_source(SRC)
    result = PromotionPipeline(verify=False).run(module)
    assert result.output_matches


def test_entry_args_forwarded():
    source = """
    int bias = 3;
    int main(int a, int b) {
        for (int i = 0; i < a; i++) bias += b;
        return bias;
    }
    """
    module = compile_source(source)
    result = PromotionPipeline(args=[4, 10]).run(module)
    assert result.output_matches
    assert run_module(module, args=[4, 10]).return_value == 43


def test_report_format_stable():
    module = compile_source(SRC)
    result = PromotionPipeline().run(module)
    report = result.report()
    assert report.count("\n") == 5
    for token in (
        "static  loads",
        "dynamic stores",
        "behaviour preserved",
        "functions:",
        "promoted",
        "rolled back",
    ):
        assert token in report
