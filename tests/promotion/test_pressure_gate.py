"""The register-pressure-aware gating extension (Table 3's trade-off)."""

from repro.bench.workloads import WORKLOADS
from repro.frontend.lower import compile_source
from repro.promotion.driver import PromotionOptions
from repro.promotion.pipeline import PromotionPipeline
from repro.regalloc.coloring import colors_needed
from repro.regalloc.interference import build_interference_graph

SRC = WORKLOADS["go"].source


def _run(limit):
    module = compile_source(SRC)
    options = PromotionOptions(pressure_limit=limit)
    result = PromotionPipeline(options=options).run(module)
    assert result.output_matches
    colors = max(
        colors_needed(build_interference_graph(f)) for f in module.functions.values()
    )
    return result, colors


def test_tight_limit_caps_pressure():
    limited, colors_limited = _run(limit=5)
    unlimited, colors_unlimited = _run(limit=None)
    assert colors_limited <= max(5, colors_unlimited)
    # The cap costs dynamic improvement: the trade-off is real.
    assert (
        limited.dynamic_after.total >= unlimited.dynamic_after.total
    )


def test_limit_sweep_monotone_improvement():
    # Looser pressure budgets monotonically (weakly) improve dynamic
    # counts, converging to the unlimited result.
    totals = []
    for limit in (4, 6, 10, None):
        result, _ = _run(limit)
        totals.append(result.dynamic_after.total)
    assert totals[0] >= totals[1] >= totals[2] >= totals[3]


def test_semantics_preserved_under_any_limit():
    for limit in (1, 3, 7):
        result, _ = _run(limit)
        assert result.output_matches
