from repro.analysis.dominance import DominatorTree
from repro.analysis.intervals import normalize_for_promotion
from repro.ir.parser import parse_module
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.profile.profiles import ProfileData
from repro.promotion.profitability import plan_no_defs_web, plan_web
from repro.promotion.webs import construct_ssa_webs

COLD_CALL_LOOP = """
module m
global @x = 0
func @main() {
entry:
  jmp h
h:
  %i = phi [entry: 0, latch: %i2]
  %c = lt %i, 100
  br %c, body, done
body:
  %t1 = ld @x
  %t2 = add %t1, 1
  st @x, %t2
  %cc = lt %t2, 30
  br %cc, cold, latch
cold:
  %r = call @foo()
  jmp latch
latch:
  %i2 = add %i, 1
  jmp h
done:
  ret
}
func @foo() {
entry:
  ret
}
"""


def _prepare(text, freqs):
    module = parse_module(text)
    func = module.get_function("main")
    tree = normalize_for_promotion(func)
    build_memory_ssa(func, AliasModel.conservative(module))
    profile = ProfileData()
    for block in func.blocks:
        profile.set_freq(block, freqs.get(block.name, 1))
    return module, func, tree, profile


def _loop_plan(func, tree, profile):
    loop = tree.intervals[0]
    webs = construct_ssa_webs(func, loop)
    assert len(webs) == 1
    return plan_web(webs[0], profile, DominatorTree.compute(func))


def test_cold_call_promotion_profitable():
    module, func, tree, profile = _prepare(
        COLD_CALL_LOOP,
        {"entry": 1, "h": 101, "body": 100, "cold": 4, "latch": 100, "done": 1},
    )
    plan = _loop_plan(func, tree, profile)
    # Replace the hot load (100) at the cost of a reload in cold (4) plus
    # the preheader load (1).
    assert len(plan.replaceable_loads) == 1
    assert plan.profit_loads == 100 - 4 - 1
    # Remove the hot store (100) at the cost of a flush in cold (4).
    assert plan.profit_stores == 100 - 4
    assert plan.remove_stores
    assert plan.worthwhile


def test_hot_call_promotion_rejected():
    # When the call executes every iteration, compensation outweighs.
    module, func, tree, profile = _prepare(
        COLD_CALL_LOOP,
        {"entry": 1, "h": 101, "body": 100, "cold": 100, "latch": 100, "done": 1},
    )
    plan = _loop_plan(func, tree, profile)
    assert plan.profit_loads == 100 - 100 - 1
    assert not plan.worthwhile


def test_loads_added_placement():
    module, func, tree, profile = _prepare(
        COLD_CALL_LOOP,
        {"entry": 1, "h": 101, "body": 100, "cold": 4, "latch": 100, "done": 1},
    )
    plan = _loop_plan(func, tree, profile)
    # Leaves: the live-in at the preheader, and the call-defined name in
    # the cold block.
    blocks = sorted(anchor.block.name for _, anchor in plan.loads_added)
    assert blocks == ["cold", "entry"]


def test_stores_added_placement():
    module, func, tree, profile = _prepare(
        COLD_CALL_LOOP,
        {"entry": 1, "h": 101, "body": 100, "cold": 4, "latch": 100, "done": 1},
    )
    plan = _loop_plan(func, tree, profile)
    # One flush, immediately at the call (the aliased load uses the store
    # name directly).
    assert len(plan.stores_added) == 1
    name, anchor = plan.stores_added[0]
    assert anchor.block.name == "cold"


def test_webs_split_at_call_inside_loop():
    # A store whose value only reaches a call splits from the web that
    # carries the loop phi (the call's def feeds the latch phi): two webs
    # for one variable in one interval, each assessed independently.
    module, func, tree, profile = _prepare(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, latch: %i2]
          %c = lt %i, 100
          br %c, body, done
        body:
          %t1 = ld @x
          %cc = lt %t1, 5
          br %cc, rare, latch
        rare:
          st @x, %i
          %r = call @foo()
          jmp latch
        latch:
          %i2 = add %i, 1
          jmp h
        done:
          ret
        }
        func @foo() {
        entry:
          ret
        }
        """,
        {"entry": 1, "h": 101, "body": 100, "rare": 2, "latch": 100, "done": 1},
    )
    loop = tree.intervals[0]
    webs = construct_ssa_webs(func, loop)
    assert len(webs) == 2
    load_web = next(w for w in webs if w.load_refs)
    store_web = next(w for w in webs if w.store_refs)
    domtree = DominatorTree.compute(func)

    # Load web: the hot load (100) is replaced at the cost of the entry
    # load (1) and the reload after the call (2).
    load_plan = plan_web(load_web, profile, domtree)
    assert load_plan.profit_loads == 100 - 1 - 2
    assert load_plan.worthwhile

    # Store web: flushing before the call costs exactly what the store
    # cost (both at freq 2) — a wash, promoted on the >= 0 tie rule.
    store_plan = plan_web(store_web, profile, domtree)
    assert store_plan.profit_stores == 0
    assert store_plan.remove_stores


def test_no_defs_plan():
    module, func, tree, profile = _prepare(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          st @x, 5
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 10
          br %c, body, out
        body:
          %t = ld @x
          %i2 = add %i, %t
          jmp h
        out:
          ret
        }
        """,
        {"entry": 1, "h": 11, "body": 10, "out": 1},
    )
    loop = tree.intervals[0]
    webs = construct_ssa_webs(func, loop)
    plan = plan_no_defs_web(webs[0], profile, loop.preheader)
    assert plan.profit == 10 - 1
    assert plan.worthwhile


def test_zero_profit_promotes():
    # Ties promote (the paper uses profit >= 0), increasing register
    # pressure — the effect Table 3 measures.
    module, func, tree, profile = _prepare(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          st @x, 5
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 1
          br %c, body, out
        body:
          %t = ld @x
          %i2 = add %i, %t
          jmp h
        out:
          ret
        }
        """,
        {"entry": 1, "h": 2, "body": 1, "out": 1},
    )
    loop = tree.intervals[0]
    webs = construct_ssa_webs(func, loop)
    plan = plan_no_defs_web(webs[0], profile, loop.preheader)
    assert plan.profit == 0
    assert plan.worthwhile
