"""Unit tests for the promoteInWeb machinery (Figures 4-6), exercised on
hand-prepared webs rather than through the full pipeline."""

from repro.analysis.dominance import DominatorTree
from repro.analysis.intervals import normalize_for_promotion
from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.ir.values import VReg
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.profile.profiles import ProfileData
from repro.promotion.profitability import plan_web
from repro.promotion.webpromote import WebPromotion
from repro.promotion.webs import construct_ssa_webs

LOOP = """
module m
global @x = 0
func @main() {
entry:
  jmp h
h:
  %i = phi [entry: 0, latch: %i2]
  %c = lt %i, 100
  br %c, body, done
body:
  %t1 = ld @x
  %t2 = add %t1, 1
  st @x, %t2
  %cc = lt %t2, 30
  br %cc, cold, latch
cold:
  %r = call @foo()
  jmp latch
latch:
  %i2 = add %i, 1
  jmp h
done:
  ret
}
func @foo() {
entry:
  ret
}
"""


def _setup():
    module = parse_module(LOOP)
    func = module.get_function("main")
    tree = normalize_for_promotion(func)
    mssa = build_memory_ssa(func, AliasModel.conservative(module))
    loop = tree.intervals[0]
    (web,) = construct_ssa_webs(func, loop)
    profile = ProfileData()
    freqs = {"entry": 1, "h": 101, "body": 100, "cold": 4, "latch": 100, "done": 1}
    for block in func.blocks:
        profile.set_freq(block, freqs.get(block.name, 1))
    domtree = DominatorTree.compute(func)
    plan = plan_web(web, profile, domtree)
    entry_name = mssa.entry_names[module.get_global("x")]
    promo = WebPromotion(func, plan, domtree, entry_name)
    return module, func, web, plan, promo


def test_init_vr_map_places_copies_after_stores():
    module, func, web, plan, promo = _setup()
    promo.init_vr_map()
    (store,) = web.store_refs
    body = store.block
    idx = body.instructions.index(store)
    after = body.instructions[idx + 1]
    assert isinstance(after, I.Copy)
    assert after.src is store.value
    assert promo.vr_map[id(store.mem_defs[0])] is after.dst


def test_insert_loads_at_phi_leaves_positions():
    module, func, web, plan, promo = _setup()
    promo.init_vr_map()
    promo.insert_loads_at_phi_leaves()
    # Leaves: live-in at the preheader (entry), call-def in cold.
    loads = {
        (inst.block.name, inst.mem_uses[0].version): inst
        for inst in func.instructions()
        if isinstance(inst, I.Load) and inst.dst.name.startswith("rl")
    }
    blocks = sorted(name for name, _ in loads)
    assert blocks == ["cold", "entry"]
    for (block_name, _), load in loads.items():
        # Inserted directly before the block's terminator.
        body = load.block.instructions
        assert body.index(load) == len(body) - 2


def test_materialize_creates_mirroring_phi():
    module, func, web, plan, promo = _setup()
    promo.init_vr_map()
    promo.insert_loads_at_phi_leaves()
    header_phi = next(p for p in web.phis if p.block.name == "h")
    value = promo.materialize_store_value(header_phi.dst_name)
    assert isinstance(value, VReg)
    reg_phi = value.def_inst
    assert isinstance(reg_phi, I.Phi)
    assert reg_phi.block is header_phi.block
    # Same incoming block set as the memory phi it mirrors.
    assert {b.name for b, _ in reg_phi.incoming} == {
        b.name for b, _ in header_phi.incoming
    }
    # Memoized: second call returns the same register.
    assert promo.materialize_store_value(header_phi.dst_name) is value


def test_materialize_handles_cyclic_phis():
    # Loop phis reference each other through the latch; the placeholder-
    # first strategy must terminate and produce a verifiable function.
    module, func, web, plan, promo = _setup()
    promo.init_vr_map()
    promo.insert_loads_at_phi_leaves()
    for phi in web.phis:
        promo.materialize_store_value(phi.dst_name)
    assert promo.stats["reg_phis_created"] == len(web.phis)


def test_replace_loads_by_copies_swaps_in_place():
    module, func, web, plan, promo = _setup()
    promo.init_vr_map()
    promo.insert_loads_at_phi_leaves()
    (load,) = plan.replaceable_loads
    dst = load.dst
    block = load.block
    idx = block.instructions.index(load)
    promo.replace_loads_by_copies()
    replacement = block.instructions[idx]
    assert isinstance(replacement, I.Copy)
    assert replacement.dst is dst  # same register, uses unaffected
    assert load.block is None


def test_stores_inserted_before_aliased_loads():
    module, func, web, plan, promo = _setup()
    promo.init_vr_map()
    promo.insert_loads_at_phi_leaves()
    promo.replace_loads_by_copies()
    promo.insert_stores_for_aliased_loads()
    call = next(i for i in func.instructions() if isinstance(i, I.Call))
    cold = call.block
    idx = cold.instructions.index(call)
    flush = cold.instructions[idx - 1]
    assert isinstance(flush, I.Store)
    assert flush.mem_defs[0] in promo.cloned


def test_dummy_requires_live_in_and_preheader():
    module, func, web, plan, promo = _setup()
    before = sum(1 for i in func.instructions() if isinstance(i, I.DummyAliasedLoad))
    promo.insert_dummy_aliased_load(None)  # root region: no preheader
    after = sum(1 for i in func.instructions() if isinstance(i, I.DummyAliasedLoad))
    assert before == after
    preheader = func.find_block("entry")
    promo.insert_dummy_aliased_load(preheader)
    dummies = [i for i in func.instructions() if isinstance(i, I.DummyAliasedLoad)]
    assert len(dummies) == 1
    assert dummies[0].mem_uses == [web.live_in]
