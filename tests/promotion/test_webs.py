from repro.analysis.intervals import normalize_for_promotion
from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.promotion.webs import construct_ssa_webs


def _prepare(text, fname="main"):
    module = parse_module(text)
    func = module.get_function(fname)
    tree = normalize_for_promotion(func)
    build_memory_ssa(func, AliasModel.conservative(module))
    return module, func, tree


def test_straightline_calls_split_variable_into_webs():
    # The paper's x = ..; foo(); bar() example: three webs for x.
    module, func, tree = _prepare(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          st @x, 1
          %r1 = call @foo()
          %r2 = call @bar()
          ret
        }
        func @foo() {
        entry:
          ret
        }
        func @bar() {
        entry:
          ret
        }
        """
    )
    webs = construct_ssa_webs(func, tree.root)
    xwebs = [w for w in webs if w.var.name == "x"]
    # Names: store def, foo def, bar def — no phis, so three webs...
    # plus the entry name used by nothing (untracked singleton).
    assert len(xwebs) == 3
    for web in xwebs:
        assert len(web.names) == 1


def test_loop_phi_connects_names_into_one_web():
    module, func, tree = _prepare(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 10
          br %c, body, out
        body:
          %t = ld @x
          %t2 = add %t, 1
          st @x, %t2
          %i2 = add %i, 1
          jmp h
        out:
          ret
        }
        """
    )
    loop = tree.intervals[0]
    webs = construct_ssa_webs(func, loop)
    assert len(webs) == 1
    web = webs[0]
    # entry name + header phi + store def = the paper's {x0, x1, x2}.
    assert len(web.names) == 3
    assert len(web.load_refs) == 1
    assert len(web.store_refs) == 1
    assert len(web.phis) == 1
    assert web.live_in is not None and web.live_in.is_entry
    assert web.has_defs


def test_figure1_web_has_five_names_at_root():
    module, func, tree = _prepare(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          jmp h1
        h1:
          %i = phi [entry: 0, b1: %i2]
          %c1 = lt %i, 100
          br %c1, b1, pre2
        b1:
          %t1 = ld @x
          %t2 = add %t1, 1
          st @x, %t2
          %i2 = add %i, 1
          jmp h1
        pre2:
          jmp h2
        h2:
          %j = phi [pre2: 0, b2: %j2]
          %c2 = lt %j, 10
          br %c2, b2, done
        b2:
          %r = call @foo()
          %j2 = add %j, 1
          jmp h2
        done:
          ret
        }
        func @foo() {
        entry:
          ret
        }
        """
    )
    webs = construct_ssa_webs(func, tree.root)
    xwebs = [w for w in webs if w.var.name == "x"]
    assert len(xwebs) == 1
    assert len(xwebs[0].names) == 5  # {x0, x1, x2, x3, x4} of the paper


def test_aliased_refs_classified():
    module, func, tree = _prepare(
        """
        module m
        global @x = 0
        func @main() {
          local @y = 0
        entry:
          %p = addr @y
          st @x, 1
          %r = call @foo()
          %t = ldp %p
          stp %p, 2
          ret %t
        }
        func @foo() {
        entry:
          ret
        }
        """
    )
    webs = construct_ssa_webs(func, tree.root)
    xweb = next(w for w in webs if w.var.name == "x" and w.store_refs)
    call = next(i for i in func.instructions() if isinstance(i, I.Call))
    # The call uses the store's name (aliased load) in this web; its own
    # definition starts a *new* web (no phi connects them in straight-line
    # code), which is exactly §4.2's point about finer-grained promotion.
    assert any(inst is call for inst, _ in xweb.aliased_load_refs)
    assert not xweb.aliased_store_refs
    other_webs = [w for w in webs if w.var.name == "x" and w is not xweb]
    assert any(inst is call for w in other_webs for inst, _ in w.aliased_store_refs)
    # Returns count as aliased loads of globals.
    ret = next(i for i in func.instructions() if isinstance(i, I.Ret))
    all_webs_x = [w for w in webs if w.var.name == "x"]
    assert any(inst is ret for w in all_webs_x for inst, _ in w.aliased_load_refs)
    # Pointer ops show up as aliased refs of the exposed local @y.
    ywebs = [w for w in webs if w.var.name == "y"]
    assert any(w.aliased_load_refs for w in ywebs)
    assert any(w.aliased_store_refs for w in ywebs)


def test_arrays_excluded_from_webs():
    module, func, tree = _prepare(
        """
        module m
        array @A[4] = 0
        global @x = 0
        func @main() {
        entry:
          sta @A, 0, 1
          %t = lda @A, 0
          st @x, %t
          ret
        }
        """
    )
    webs = construct_ssa_webs(func, tree.root)
    assert all(w.var.name != "A" for w in webs)


def test_inner_interval_web_scoped_to_interval():
    module, func, tree = _prepare(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          st @x, 5
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 10
          br %c, body, out
        body:
          %t = ld @x
          %i2 = add %i, %t
          jmp h
        out:
          ret
        }
        """
    )
    loop = tree.intervals[0]
    webs = construct_ssa_webs(func, loop)
    assert len(webs) == 1
    web = webs[0]
    # In the loop scope the store is outside: a no-defs web.
    assert not web.has_defs
    assert web.live_in is not None
    assert not web.live_in.is_entry  # fed by the store before the loop
    assert len(web.load_refs) == 1
