"""Random CFG generation (pure graph shape) for analysis property tests."""

from __future__ import annotations

import random
from typing import Tuple

from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const


def random_cfg(seed: int, max_blocks: int = 14) -> Tuple[Module, Function]:
    """A random function CFG: every block ends in ret, jmp, or condbr to
    random targets (cycles and unreachable blocks included)."""
    rng = random.Random(seed)
    module = Module()
    func = module.new_function("f")
    n = rng.randint(2, max_blocks)
    blocks = [func.new_block() for _ in range(n)]
    for i, block in enumerate(blocks):
        roll = rng.random()
        if roll < 0.15 or n == 1:
            block.append(I.Ret())
        elif roll < 0.5:
            block.append(I.Jump(rng.choice(blocks[max(0, i - 3):])))
        else:
            cond = func.new_reg("c")
            block.append(I.Copy(cond, Const(rng.randint(0, 1))))
            block.append(I.CondBr(cond, rng.choice(blocks), rng.choice(blocks)))
    # The entry must have no predecessors: give it a dedicated block.
    entry = func.new_block("start")
    entry.append(I.Jump(blocks[0]))
    func.blocks.remove(entry)
    func.blocks.insert(0, entry)
    # Back edges into blocks[0] would make the entry a pred target; the
    # dedicated entry has none by construction.
    return module, func
