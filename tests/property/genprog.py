"""Random mini-C program generation for property-based testing.

Programs are generated from a seeded ``random.Random`` so hypothesis can
drive them with a single integer.  Guarantees, by construction:

* termination — the only loops are counted ``for`` loops with literal
  bounds and fresh induction variables;
* in-bounds array access — indices are wrapped with ``((e % n) + n) % n``;
* total arithmetic — division and remainder are total in the IR;
* observability — the program prints every global at the end, so any
  miscompiled store is visible to the differential test.
"""

from __future__ import annotations

import random
from typing import List

BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<", "<=", ">", ">=", "==", "!="]


class ProgramGen:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.globals: List[str] = [f"g{i}" for i in range(self.rng.randint(2, 4))]
        self.array = "arr" if self.rng.random() < 0.6 else None
        self.array_size = self.rng.randint(3, 8)
        self.taken = self.rng.choice(self.globals)  # address-exposed global
        self.helpers: List[str] = [f"h{i}" for i in range(self.rng.randint(1, 2))]
        self._loop_counter = 0
        self._local_counter = 0

    # -- expressions -----------------------------------------------------

    def expr(self, names: List[str], depth: int = 0) -> str:
        roll = self.rng.random()
        if depth >= 3 or roll < 0.25:
            return str(self.rng.randint(-9, 20))
        if roll < 0.55 and names:
            return self.rng.choice(names)
        if roll < 0.62 and self.array is not None:
            idx = self.expr(names, depth + 2)
            n = self.array_size
            return f"{self.array}[((({idx}) % {n}) + {n}) % {n}]"
        if roll < 0.68:
            op = self.rng.choice(["-", "!", "~"])
            return f"{op}({self.expr(names, depth + 1)})"
        if roll < 0.74:
            op = self.rng.choice(["&&", "||"])
            return f"(({self.expr(names, depth + 1)}) {op} ({self.expr(names, depth + 1)}))"
        op = self.rng.choice(BINOPS)
        return f"(({self.expr(names, depth + 1)}) {op} ({self.expr(names, depth + 1)}))"

    # -- statements ------------------------------------------------------

    def lvalue(self, names: List[str]) -> str:
        roll = self.rng.random()
        if roll < 0.12 and self.array is not None:
            idx = self.expr(names, 2)
            n = self.array_size
            return f"{self.array}[((({idx}) % {n}) + {n}) % {n}]"
        candidates = self.globals + [n for n in names if n.startswith("v")]
        return self.rng.choice(candidates)

    def statement(self, names: List[str], depth: int, allow_call: bool) -> List[str]:
        roll = self.rng.random()
        if roll < 0.35:
            op = self.rng.choice(["", "", "", "+", "-", "*", "^"])
            return [f"{self.lvalue(names)} {op}= {self.expr(names)};"]
        if roll < 0.45:
            target = self.lvalue(names)
            return [f"{target}{self.rng.choice(['++', '--'])};"]
        if roll < 0.55 and depth < 2:
            cond = self.expr(names)
            then = self.block(names, depth + 1, allow_call)
            if self.rng.random() < 0.5:
                other = self.block(names, depth + 1, allow_call)
                return [f"if ({cond}) {{"] + then + ["} else {"] + other + ["}"]
            return [f"if ({cond}) {{"] + then + ["}"]
        if roll < 0.68 and depth < 2:
            self._loop_counter += 1
            var = f"i{self._loop_counter}"
            bound = self.rng.randint(2, 12)
            body = self.block(names + [var], depth + 1, allow_call)
            lines = [f"for (int {var} = 0; {var} < {bound}; {var}++) {{"] + body
            if self.rng.random() < 0.25:
                lines.append(f"if ({var} == {self.rng.randint(0, bound)}) break;")
            if self.rng.random() < 0.2:
                lines.append(f"if (({var} % 7) == 3) continue;")
            lines.append("}")
            return lines
        if roll < 0.78 and allow_call and self.helpers:
            callee = self.rng.choice(self.helpers)
            return [f"{callee}({self.expr(names)});"]
        if roll < 0.86:
            self._local_counter += 1
            name = f"v{self._local_counter}"
            names.append(name)
            return [f"int {name} = {self.expr(names)};"]
        if roll < 0.93 and self.rng.random() < 0.5:
            # Pointer traffic through the designated exposed global.
            return [f"*p = {self.expr(names)};"]
        return [f"{self.rng.choice(self.globals)} = *p;"]

    def block(self, names: List[str], depth: int, allow_call: bool) -> List[str]:
        lines: List[str] = []
        for _ in range(self.rng.randint(1, 4)):
            lines.extend(self.statement(list(names), depth, allow_call))
        return lines

    # -- whole program -----------------------------------------------------

    def generate(self) -> str:
        lines: List[str] = []
        for name in self.globals:
            lines.append(f"int {name} = {self.rng.randint(-5, 9)};")
        if self.array is not None:
            lines.append(f"int {self.array}[{self.array_size}];")

        for helper in self.helpers:
            lines.append(f"void {helper}(int a) {{")
            lines.append("    int *p = &" + self.taken + ";")
            # Helpers may not call (keeps call graphs acyclic and shallow).
            lines.extend("    " + l for l in self.block(["a"], 1, allow_call=False))
            lines.append("}")

        lines.append("int main() {")
        lines.append(f"    int *p = &{self.taken};")
        lines.extend("    " + l for l in self.block([], 0, allow_call=True))
        lines.append("    print(" + ", ".join(self.globals) + ");")
        if self.array is not None:
            lines.append(
                f"    print({self.array}[0], {self.array}[{self.array_size - 1}]);"
            )
        lines.append(f"    return ({self.expr(self.globals)}) % 1000;")
        lines.append("}")
        return "\n".join(lines)


def random_program(seed: int) -> str:
    return ProgramGen(seed).generate()
