"""Property tests for the analysis substrate on random CFGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfgutils import (
    edges,
    is_critical_edge,
    remove_unreachable_blocks,
    reverse_postorder,
    split_critical_edges,
)
from repro.analysis.dominance import DominatorTree
from repro.analysis.idf import idf_cytron, idf_sreedhar_gao
from repro.analysis.intervals import IntervalTree, normalize_for_promotion
from repro.ir.verify import verify_function

from tests.property.gencfg import random_cfg

SETTINGS = settings(max_examples=80, deadline=None)


@SETTINGS
@given(st.integers(0, 10**9))
def test_dominates_matches_reachability_definition(seed):
    _, func = random_cfg(seed)
    remove_unreachable_blocks(func)
    tree = DominatorTree.compute(func)

    def reachable_avoiding(avoid, target):
        seen, stack = set(), [func.entry]
        while stack:
            block = stack.pop()
            if block is avoid or id(block) in seen:
                continue
            seen.add(id(block))
            if block is target:
                return True
            stack.extend(block.succs)
        return False

    for a in func.blocks:
        for b in func.blocks:
            if a is b:
                continue
            assert tree.strictly_dominates(a, b) == (
                not reachable_avoiding(a, b)
            ), (a.name, b.name)


@SETTINGS
@given(st.integers(0, 10**9), st.integers(0, 100))
def test_idf_algorithms_agree(seed, subset_seed):
    import random as _random

    _, func = random_cfg(seed)
    remove_unreachable_blocks(func)
    tree = DominatorTree.compute(func)
    rng = _random.Random(subset_seed)
    defs = [b for b in tree.reachable if rng.random() < 0.4]
    got_cytron = sorted(b.name for b in idf_cytron(tree, defs))
    got_sg = sorted(b.name for b in idf_sreedhar_gao(tree, defs))
    assert got_cytron == got_sg


@SETTINGS
@given(st.integers(0, 10**9))
def test_idf_is_closed_under_df(seed):
    # IDF(S) must equal DF(S ∪ IDF(S)) — the defining fixed point.
    _, func = random_cfg(seed)
    remove_unreachable_blocks(func)
    tree = DominatorTree.compute(func)
    defs = tree.reachable[:: 2]
    idf = idf_cytron(tree, defs)
    frontier = tree.dominance_frontier()
    closure = set()
    for block in list(defs) + list(idf):
        closure.update(id(b) for b in frontier.get(block, []))
    assert closure == {id(b) for b in idf}


@SETTINGS
@given(st.integers(0, 10**9))
def test_split_critical_edges_complete(seed):
    _, func = random_cfg(seed)
    remove_unreachable_blocks(func)
    split_critical_edges(func)
    verify_function(func)
    for src, dst in edges(func):
        assert not is_critical_edge(src, dst)


@SETTINGS
@given(st.integers(0, 10**9))
def test_interval_tree_well_formed(seed):
    _, func = random_cfg(seed)
    remove_unreachable_blocks(func)
    tree = IntervalTree.compute(func)
    all_ids = {id(b) for b in func.blocks}
    for interval in tree.intervals:
        # Nested intervals are strict subsets of their parents.
        assert interval.parent is not None
        parent_ids = {id(b) for b in interval.parent.blocks}
        child_ids = {id(b) for b in interval.blocks}
        assert child_ids < parent_ids or interval.parent.is_root
        assert child_ids <= all_ids
        # Every entry block is a member with an outside predecessor.
        for entry in interval.entries:
            assert interval.contains(entry)
        # Headers have minimal RPO among entries.
        assert interval.header in interval.entries
        # Depth increases along the tree.
        assert interval.depth == interval.parent.depth + 1


@SETTINGS
@given(st.integers(0, 10**9))
def test_normalize_for_promotion_invariants(seed):
    _, func = random_cfg(seed)
    tree = normalize_for_promotion(func)
    verify_function(func)
    for interval in tree.intervals:
        assert interval.preheader is not None
        assert not interval.contains(interval.preheader)
        for _, tail in interval.exit_edges():
            assert len(tail.preds) == 1
    # Stability: a second normalization changes nothing.
    n = len(func.blocks)
    normalize_for_promotion(func)
    assert len(func.blocks) == n


@SETTINGS
@given(st.integers(0, 10**9))
def test_rpo_is_topological_on_dominance(seed):
    # A dominator always precedes its dominated blocks in RPO.
    _, func = random_cfg(seed)
    remove_unreachable_blocks(func)
    tree = DominatorTree.compute(func)
    order = {id(b): i for i, b in enumerate(reverse_postorder(func))}
    for block in func.blocks:
        idom = tree.idom.get(block)
        if idom is not None:
            assert order[id(idom)] < order[id(block)]
