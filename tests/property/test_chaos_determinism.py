"""Chaos-determinism property: injected transient faults never change
what a generated program computes — only quarantine membership and
attempt counts may differ from a clean run.

Each example costs several worker-pool spins, so the example budget is
small; the programs and the chaos schedule are both seeded, keeping any
failure exactly reproducible.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend.lower import compile_source
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline
from repro.robustness import ChaosConfig, ResilienceOptions

from tests.property.genprog import random_program

SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def observe(module):
    result = run_module(module, max_steps=2_000_000)
    return result.output, result.return_value, result.globals_snapshot()


@SETTINGS
@given(st.integers(0, 10**9), st.integers(0, 10**6))
def test_transient_chaos_never_changes_program_behaviour(seed, chaos_seed):
    source = random_program(seed)
    baseline = observe(compile_source(source))

    module = compile_source(source)
    resilience = ResilienceOptions(
        retries=1,
        backoff_base_s=0.001,
        backoff_max_s=0.01,
        chaos=ChaosConfig(transient=0.3, seed=chaos_seed),
    )
    result = PromotionPipeline(jobs=2, resilience=resilience).run(module)
    diags = result.diagnostics

    # The one inviolable property: chaos may cost promotions (quarantine)
    # but never correctness.
    assert result.output_matches, source
    assert observe(module) == baseline, source

    # Every function is accounted for — promoted, rolled back, skipped,
    # or quarantined; nothing is silently dropped.
    accounted = (
        set(diags.promoted_functions)
        | set(diags.rolled_back_functions)
        | set(diags.skipped_functions)
        | set(diags.quarantined_functions)
    )
    assert accounted == set(module.functions), source

    # Quarantined functions burned their whole attempt budget; promoted
    # ones have a promoted final attempt.
    for name in diags.quarantined_functions:
        assert diags.attempt_histories[name]["attempts"] == resilience.max_attempts
    for name in diags.promoted_functions:
        records = diags.attempt_histories[name]["records"]
        assert records[-1]["outcome"] == "promoted"
