"""The central correctness property: promotion preserves behaviour.

For random mini-C programs (seeded generation, hypothesis-driven), the
promoted program must print the same output, return the same value, and
leave the same final global state as the original — under the paper's
algorithm and both baselines, with every option combination.
"""

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.baselines.lucooper import LuCooperPipeline
from repro.baselines.mahlke import MahlkePipeline
from repro.frontend.lower import compile_source
from repro.profile.interp import run_module
from repro.promotion.driver import PromotionOptions
from repro.promotion.pipeline import PromotionPipeline

from tests.property.genprog import random_program

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def observe(module):
    result = run_module(module, max_steps=2_000_000)
    return result.output, result.return_value, result.globals_snapshot()


def check_promoter(seed, make_pipeline):
    source = random_program(seed)
    baseline = observe(compile_source(source))
    module = compile_source(source)
    result = make_pipeline().run(module)
    assert result.output_matches, source
    assert observe(module) == baseline, source
    return result


@SETTINGS
@given(st.integers(0, 10**9))
# Regression: a loop whose body breaks on the first iteration made the
# paper's profit formula claim a store removal that tail-store insertion
# immediately undid, net-adding one load per call (caught by the
# decision journal; fixed by defaulting count_tail_stores on).
@example(seed=261)
def test_sastry_ju_preserves_semantics(seed):
    result = check_promoter(seed, PromotionPipeline)
    # The profitability gate means guided promotion never materially
    # regresses dynamic memory traffic.
    assert result.dynamic_after.total <= result.dynamic_before.total * 1.05 + 8


@SETTINGS
@given(st.integers(0, 10**9))
def test_profile_blind_preserves_semantics(seed):
    check_promoter(
        seed, lambda: PromotionPipeline(options=PromotionOptions(require_profit=False))
    )


@SETTINGS
@given(st.integers(0, 10**9))
def test_no_store_removal_preserves_semantics(seed):
    check_promoter(
        seed, lambda: PromotionPipeline(options=PromotionOptions(remove_stores=False))
    )


@SETTINGS
@given(st.integers(0, 10**9))
def test_whole_variable_mode_preserves_semantics(seed):
    check_promoter(
        seed, lambda: PromotionPipeline(options=PromotionOptions(per_web=False))
    )


@SETTINGS
@given(st.integers(0, 10**9))
def test_lucooper_preserves_semantics(seed):
    check_promoter(seed, LuCooperPipeline)


@SETTINGS
@given(st.integers(0, 10**9))
def test_mahlke_preserves_semantics(seed):
    check_promoter(seed, MahlkePipeline)


@SETTINGS
@given(st.integers(0, 10**9))
def test_generated_programs_are_valid(seed):
    # The generator itself: compiles, verifies, runs within budget.
    from repro.ir.verify import verify_module

    source = random_program(seed)
    module = compile_source(source)
    verify_module(module)
    output, ret, snapshot = observe(module)
    assert isinstance(ret, int)
