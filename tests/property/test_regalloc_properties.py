"""Register-allocation properties: exact chromatic cross-check on small
graphs, liveness sanity on random programs, and the full back-end flow."""

import itertools
import random as _random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.liveness import Liveness
from repro.frontend.lower import compile_source
from repro.ir.values import VReg
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline
from repro.regalloc.coloring import colors_needed
from repro.regalloc.interference import InterferenceGraph, build_interference_graph
from repro.ssa.construct import construct_ssa
from repro.ssa.destruct import destruct_ssa

from tests.property.genprog import random_program

SETTINGS = settings(max_examples=40, deadline=None)


def _exact_chromatic(nodes, graph):
    n = len(nodes)
    if n == 0:
        return 0
    for k in range(1, n + 1):
        for assignment in itertools.product(range(k), repeat=n):
            ok = True
            for i, a in enumerate(nodes):
                for j in range(i + 1, n):
                    if graph.interferes(a, nodes[j]) and assignment[i] == assignment[j]:
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                return k
    return n


@SETTINGS
@given(st.integers(0, 10**9))
def test_colors_needed_close_to_exact_chromatic(seed):
    rng = _random.Random(seed)
    n = rng.randint(1, 7)  # small enough for brute force
    regs = [VReg(f"r{i}") for i in range(n)]
    graph = InterferenceGraph()
    for reg in regs:
        graph.add_node(reg)
    for _ in range(rng.randint(0, 2 * n)):
        graph.add_edge(rng.choice(regs), rng.choice(regs))
    heuristic = colors_needed(graph)
    exact = _exact_chromatic(regs, graph)
    # A valid coloring with `heuristic` colors exists, so it is an upper
    # bound on chi; Briggs is near-optimal on graphs this small.
    assert exact <= heuristic <= exact + 1


@SETTINGS
@given(st.integers(0, 10**9))
def test_liveness_never_reaches_entry_undefined(seed):
    # After mem2reg, nothing may be live into the entry block except
    # parameters: a live-in temp would mean a read of an undefined value.
    source = random_program(seed)
    module = compile_source(source)
    for function in module.functions.values():
        construct_ssa(function)
        live = Liveness.compute(function)
        params = set(function.params)
        assert live.live_in[function.entry] <= params, function.name


@SETTINGS
@given(st.integers(0, 10**9))
def test_full_backend_flow(seed):
    """promote → out-of-SSA → interference/coloring → still executable
    with identical behaviour: the complete compilation story."""
    source = random_program(seed)
    base = run_module(compile_source(source), max_steps=4_000_000)
    module = compile_source(source)
    PromotionPipeline().run(module)
    for function in module.functions.values():
        destruct_ssa(function)
        graph = build_interference_graph(function)
        k = colors_needed(graph)
        assert k >= 0
    after = run_module(module, max_steps=4_000_000)
    assert after.output == base.output
    assert after.return_value == base.return_value
    assert after.globals_snapshot() == base.globals_snapshot()
