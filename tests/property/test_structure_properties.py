"""Structural property tests: union-find against a model, incremental
update vs CSS96 equivalence, coloring validity."""

import random as _random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.values import VReg
from repro.regalloc.coloring import color_graph, colors_needed
from repro.regalloc.interference import InterferenceGraph
from repro.ssa.unionfind import UnionFind

SETTINGS = settings(max_examples=60, deadline=None)


class _Item:
    __slots__ = ("tag",)

    def __init__(self, tag):
        self.tag = tag


@SETTINGS
@given(st.integers(0, 10**9))
def test_unionfind_matches_naive_partition_model(seed):
    rng = _random.Random(seed)
    n = rng.randint(1, 30)
    items = [_Item(i) for i in range(n)]
    uf = UnionFind()
    model = {i: {i} for i in range(n)}  # tag -> set of tags

    for item in items:
        uf.add(item)
    for _ in range(rng.randint(0, 40)):
        a, b = rng.randrange(n), rng.randrange(n)
        uf.union(items[a], items[b])
        merged = model[a] | model[b]
        for member in merged:
            model[member] = merged

    for i in range(n):
        for j in range(n):
            assert uf.connected(items[i], items[j]) == (j in model[i])
    # groups() partitions all items exactly once.
    seen = [item.tag for group in uf.groups() for item in group]
    assert sorted(seen) == list(range(n))


@SETTINGS
@given(st.integers(0, 10**9))
def test_coloring_is_always_proper(seed):
    rng = _random.Random(seed)
    n = rng.randint(1, 20)
    regs = [VReg(f"r{i}") for i in range(n)]
    graph = InterferenceGraph()
    for reg in regs:
        graph.add_node(reg)
    for _ in range(rng.randint(0, 3 * n)):
        graph.add_edge(rng.choice(regs), rng.choice(regs))

    k = colors_needed(graph)
    result = color_graph(graph, k)
    assert result.colorable
    for reg in regs:
        for other in graph.neighbors(reg):
            assert result.assignment[reg] != result.assignment[other]
    # Minimality at the search boundary: k-1 colors must fail (k > 1).
    if k > 1:
        assert not color_graph(graph, k - 1).colorable


@SETTINGS
@given(st.integers(0, 10**9))
def test_batched_and_css96_updates_agree(seed):
    """Both updaters must leave structurally equivalent memory SSA:
    same number of phis, and every load renamed to a name defined by the
    same kind of instruction."""
    from benchmarks.test_incremental_vs_css96 import (
        build_diamond_chain,
        insert_clones,
    )
    from repro.ir import instructions as I
    from repro.ir.verify import verify_function
    from repro.ssa.css96 import css96_update
    from repro.ssa.incremental import update_ssa_for_cloned_resources

    rng = _random.Random(seed)
    n = rng.randint(2, 12)
    every = rng.randint(1, 5)

    _, func_a, x0_a, sites_a = build_diamond_chain(n, every)
    cloned_a = insert_clones(func_a, x0_a.var, sites_a)
    update_ssa_for_cloned_resources(func_a, [x0_a], cloned_a)
    verify_function(func_a, check_memssa=True)

    _, func_b, x0_b, sites_b = build_diamond_chain(n, every)
    cloned_b = insert_clones(func_b, x0_b.var, sites_b)
    css96_update(func_b, [x0_b], cloned_b)
    verify_function(func_b, check_memssa=True)

    def signature(func):
        phis = sum(1 for i in func.instructions() if isinstance(i, I.MemPhi))
        loads = []
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, I.Load):
                    definer = inst.mem_uses[0].def_inst
                    loads.append(
                        (block.name, type(definer).__name__ if definer else "entry")
                    )
        return phis, loads

    assert signature(func_a) == signature(func_b)
