"""Property tests for the individual transformations: each must preserve
program behaviour in isolation, and printing must round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intervals import normalize_for_promotion
from repro.frontend.lower import compile_source
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verify import verify_module
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.profile.interp import run_module
from repro.ssa.construct import construct_ssa
from repro.ssa.destruct import destruct_ssa, eliminate_phis

from tests.property.genprog import random_program

SETTINGS = settings(max_examples=30, deadline=None)


def observe(module):
    result = run_module(module, max_steps=2_000_000)
    return result.output, result.return_value, result.globals_snapshot()


@SETTINGS
@given(st.integers(0, 10**9))
def test_mem2reg_preserves_semantics(seed):
    source = random_program(seed)
    baseline = observe(compile_source(source))
    module = compile_source(source)
    for function in module.functions.values():
        construct_ssa(function)
    verify_module(module, check_ssa=True)
    assert observe(module) == baseline


@SETTINGS
@given(st.integers(0, 10**9))
def test_normalization_preserves_semantics(seed):
    source = random_program(seed)
    baseline = observe(compile_source(source))
    module = compile_source(source)
    for function in module.functions.values():
        construct_ssa(function)
        normalize_for_promotion(function)
    verify_module(module, check_ssa=True)
    assert observe(module) == baseline


@SETTINGS
@given(st.integers(0, 10**9))
def test_memssa_annotations_verify_and_do_not_change_behaviour(seed):
    source = random_program(seed)
    module = compile_source(source)
    for function in module.functions.values():
        construct_ssa(function)
        normalize_for_promotion(function)
    baseline = observe(module)
    model = AliasModel.conservative(module)
    for function in module.functions.values():
        build_memory_ssa(function, model)
    verify_module(module, check_ssa=True, check_memssa=True)
    assert observe(module) == baseline


@SETTINGS
@given(st.integers(0, 10**9))
def test_phi_elimination_preserves_semantics(seed):
    source = random_program(seed)
    module = compile_source(source)
    for function in module.functions.values():
        construct_ssa(function)
    baseline = observe(module)
    for function in module.functions.values():
        eliminate_phis(function)
        verify_module(module)  # no longer SSA, but structurally sound
    assert observe(module) == baseline


@SETTINGS
@given(st.integers(0, 10**9))
def test_full_destruction_after_promotion(seed):
    from repro.promotion.pipeline import PromotionPipeline

    source = random_program(seed)
    baseline = observe(compile_source(source))
    module = compile_source(source)
    PromotionPipeline().run(module)
    for function in module.functions.values():
        destruct_ssa(function)
    verify_module(module)
    assert observe(module) == baseline


@SETTINGS
@given(st.integers(0, 10**9))
def test_printer_parser_round_trip(seed):
    source = random_program(seed)
    module = compile_source(source)
    text1 = print_module(module, with_mem=False)
    module2 = parse_module(text1)
    text2 = print_module(module2, with_mem=False)
    assert text1 == text2
    assert observe(module) == observe(module2)
