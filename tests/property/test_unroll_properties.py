"""Unrolling property tests: semantics preserved on random programs,
alone and composed with promotion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.lower import compile_source
from repro.ir.verify import verify_module
from repro.passes.unroll import unroll_module
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline

from tests.property.genprog import random_program

SETTINGS = settings(max_examples=30, deadline=None)


def observe(module):
    result = run_module(module, max_steps=4_000_000)
    return result.output, result.return_value, result.globals_snapshot()


@SETTINGS
@given(st.integers(0, 10**9))
def test_unroll_preserves_semantics(seed):
    source = random_program(seed)
    baseline = observe(compile_source(source))
    module = compile_source(source)
    unroll_module(module)
    verify_module(module, check_memssa=True)
    assert observe(module) == baseline, source


@SETTINGS
@given(st.integers(0, 10**9))
def test_unroll_then_promote_preserves_semantics(seed):
    source = random_program(seed)
    baseline = observe(compile_source(source))
    module = compile_source(source)
    unroll_module(module)
    result = PromotionPipeline().run(module)
    assert result.output_matches, source
    assert observe(module) == baseline, source
