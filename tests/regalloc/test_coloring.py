from repro.ir.parser import parse_module
from repro.ir.values import VReg
from repro.promotion.pipeline import PromotionPipeline
from repro.regalloc.coloring import color_graph, colors_needed
from repro.regalloc.interference import InterferenceGraph, build_interference_graph


def _clique(n):
    g = InterferenceGraph()
    regs = [VReg(f"r{i}") for i in range(n)]
    for i, a in enumerate(regs):
        for b in regs[i + 1:]:
            g.add_edge(a, b)
    return g, regs


def test_empty_graph():
    g = InterferenceGraph()
    assert colors_needed(g) == 0


def test_single_node():
    g = InterferenceGraph()
    g.add_node(VReg("a"))
    assert colors_needed(g) == 1


def test_clique_needs_n_colors():
    for n in (2, 3, 5, 8):
        g, _ = _clique(n)
        assert colors_needed(g) == n


def test_cycle_colors():
    # Even cycle: 2 colors; odd cycle: 3.
    def cycle(n):
        g = InterferenceGraph()
        regs = [VReg(f"r{i}") for i in range(n)]
        for i in range(n):
            g.add_edge(regs[i], regs[(i + 1) % n])
        return g

    assert colors_needed(cycle(6)) == 2
    assert colors_needed(cycle(7)) == 3


def test_color_assignment_valid():
    g, regs = _clique(4)
    result = color_graph(g, 4)
    assert result.colorable
    for reg in regs:
        for other in g.neighbors(reg):
            assert result.assignment[reg] != result.assignment[other]


def test_insufficient_colors_spill():
    g, _ = _clique(5)
    result = color_graph(g, 3)
    assert not result.colorable
    assert len(result.spilled) >= 1


def test_promotion_increases_colors_needed():
    # Table 3's effect: promotion extends live ranges, raising pressure.
    text = """
    module m
    global @a = 0
    global @b = 0
    global @c = 0
    func @main() {
    entry:
      jmp h
    h:
      %i = phi [entry: 0, body: %i2]
      %cc = lt %i, 40
      br %cc, body, out
    body:
      %ta = ld @a
      %ta2 = add %ta, 1
      st @a, %ta2
      %tb = ld @b
      %tb2 = add %tb, %ta2
      st @b, %tb2
      %tc = ld @c
      %tc2 = add %tc, %tb2
      st @c, %tc2
      %i2 = add %i, 1
      jmp h
    out:
      ret
    }
    """
    module_before = parse_module(text)
    before = colors_needed(build_interference_graph(module_before.get_function("main")))
    module_after = parse_module(text)
    PromotionPipeline().run(module_after)
    after = colors_needed(build_interference_graph(module_after.get_function("main")))
    assert after > before
