from repro.ir.parser import parse_module
from repro.ir.values import VReg
from repro.regalloc.interference import InterferenceGraph, build_interference_graph


def _regs(func):
    found = {}
    for inst in func.instructions():
        if inst.dst is not None:
            found[inst.dst.name] = inst.dst
    for p in func.params:
        found[p.name] = p
    return found


def test_graph_primitives():
    g = InterferenceGraph()
    a, b, c = VReg("a"), VReg("b"), VReg("c")
    g.add_edge(a, b)
    g.add_edge(a, c)
    g.add_edge(a, a)  # self edges ignored
    assert g.interferes(a, b) and g.interferes(b, a)
    assert not g.interferes(b, c)
    assert g.degree(a) == 2 and g.degree(b) == 1
    assert g.edge_count == 2
    assert len(g) == 3


def test_disjoint_lifetimes_do_not_interfere():
    module = parse_module(
        """
        func @f(%a) {
        entry:
          %x = add %a, 1
          %y = add %x, 1
          %z = add %y, 1
          ret %z
        }
        """
    )
    func = module.get_function("f")
    g = build_interference_graph(func)
    r = _regs(func)
    assert not g.interferes(r["x"], r["z"])
    # a dies exactly where x is born: no interference (they can share).
    assert not g.interferes(r["a"], r["x"])


def test_simultaneously_live_values_interfere():
    module = parse_module(
        """
        func @f(%a) {
        entry:
          %x = add %a, 1
          %y = add %a, 2
          %z = add %x, %y
          ret %z
        }
        """
    )
    func = module.get_function("f")
    g = build_interference_graph(func)
    r = _regs(func)
    assert g.interferes(r["x"], r["y"])


def test_copy_source_exempt():
    module = parse_module(
        """
        func @f(%a) {
        entry:
          %x = add %a, 1
          %y = copy %x
          %z = add %y, %x
          ret %z
        }
        """
    )
    func = module.get_function("f")
    g = build_interference_graph(func)
    r = _regs(func)
    # x is live across y's definition, but y = copy x is exempt.
    assert not g.interferes(r["x"], r["y"])


def test_phi_targets_interfere_with_each_other():
    module = parse_module(
        """
        func @f(%c) {
        entry:
          br %c, a, b
        a:
          jmp join
        b:
          jmp join
        join:
          %p = phi [a: 1, b: 2]
          %q = phi [a: 3, b: 4]
          %s = add %p, %q
          ret %s
        }
        """
    )
    func = module.get_function("f")
    g = build_interference_graph(func)
    r = _regs(func)
    assert g.interferes(r["p"], r["q"])


def test_loop_carried_interference():
    module = parse_module(
        """
        func @f() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %acc = phi [entry: 0, body: %acc2]
          %c = lt %i, 9
          br %c, body, out
        body:
          %acc2 = add %acc, %i
          %i2 = add %i, 1
          jmp h
        out:
          ret %acc
        }
        """
    )
    func = module.get_function("f")
    g = build_interference_graph(func)
    r = _regs(func)
    assert g.interferes(r["i"], r["acc"])
    assert g.interferes(r["i2"], r["acc2"])
