"""Tests for the transactional pipeline: snapshots, rollback, divergence
bisection, fault injection, and structured diagnostics."""
