"""Divergence bisection: synthetic predicates for the search itself, plus
an integration test where a semantically corrupted function is isolated
by actually re-executing IR."""

from repro.ir.parser import parse_module
from repro.profile.interp import run_module
from repro.robustness import (
    FaultInjector,
    capture_state,
    isolate_culprits,
    snapshot_function,
)


def predicate(bad):
    """diverges(kept) is True iff any bad function is still installed."""
    return lambda kept: bool(bad & set(kept))


def test_no_culprit_when_behaviour_matches():
    culprits, tests_run, resolved = isolate_culprits(list("abc"), predicate(set()))
    assert culprits == []
    assert resolved
    assert tests_run == 1


def test_single_culprit_binary_search():
    candidates = [f"f{i}" for i in range(8)]
    culprits, tests_run, resolved = isolate_culprits(candidates, predicate({"f5"}))
    assert culprits == ["f5"]
    assert resolved
    # initial probe + ~log2(8) bisection steps + one confirming probe
    assert tests_run <= 6


def test_two_culprits():
    candidates = [f"f{i}" for i in range(8)]
    bad = {"f2", "f5"}
    culprits, tests_run, resolved = isolate_culprits(candidates, predicate(bad))
    assert set(culprits) == bad
    assert resolved
    assert tests_run <= 12


def test_every_candidate_guilty():
    culprits, tests_run, resolved = isolate_culprits(list("ab"), predicate({"a", "b"}))
    assert set(culprits) == {"a", "b"}
    assert resolved  # rolling back everything does restore behaviour


def test_unresolved_when_rollback_never_helps():
    # Divergence persists even with everything rolled back: promotion is
    # not the cause, and the report must say so.
    culprits, tests_run, resolved = isolate_culprits(
        list("abcd"), lambda kept: True
    )
    assert not resolved
    assert set(culprits) == set("abcd")


def test_max_tests_bound_respected():
    calls = []

    def diverges(kept):
        calls.append(list(kept))
        return True

    culprits, tests_run, resolved = isolate_culprits(
        [f"f{i}" for i in range(64)], diverges, max_tests=5
    )
    assert not resolved
    assert tests_run <= 5
    assert len(calls) == tests_run


TEXT = """
module m
global @a = 0
global @b = 0

func @main() {
entry:
  %x = call @f()
  %y = call @g()
  %s = add %x, %y
  ret %s
}

func @f() {
entry:
  jmp h
h:
  %i = phi [entry: 0, body: %i2]
  %c = lt %i, 5
  br %c, body, out
body:
  %t = ld @a
  %t2 = add %t, 1
  st @a, %t2
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @a
  ret %r
}

func @g() {
entry:
  jmp h
h:
  %i = phi [entry: 0, body: %i2]
  %c = lt %i, 7
  br %c, body, out
body:
  %t = ld @b
  %t2 = add %t, 1
  st @b, %t2
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @b
  ret %r
}
"""


def test_bisection_isolates_real_semantic_corruption():
    baseline = run_module(parse_module(TEXT))
    module = parse_module(TEXT)

    pristine = {name: snapshot_function(fn) for name, fn in module.functions.items()}
    FaultInjector().apply("drop_compensating_store", module.functions["g"])
    corrupted = {name: capture_state(fn) for name, fn in module.functions.items()}

    def diverges(kept):
        kept_set = set(kept)
        for name, fn in module.functions.items():
            if name in kept_set:
                corrupted[name].install(fn)
            else:
                pristine[name].restore()
        run = run_module(module)
        return (
            run.output != baseline.output
            or run.return_value != baseline.return_value
            or run.globals_snapshot() != baseline.globals_snapshot()
        )

    culprits, tests_run, resolved = isolate_culprits(list(module.functions), diverges)
    assert culprits == ["g"]
    assert resolved

    # Install the verdict: the culprit rolled back, everything else kept.
    for name, fn in module.functions.items():
        if name in culprits:
            pristine[name].restore()
        else:
            corrupted[name].install(fn)
    final = run_module(module)
    assert final.return_value == baseline.return_value
