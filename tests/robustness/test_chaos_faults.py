"""ChaosConfig units: seeded draws, planning, injection, CLI parsing."""

import pytest

from repro.robustness import ChaosConfig, TransientFaultError


def test_draws_are_deterministic_and_decorrelated():
    chaos = ChaosConfig(transient=0.5, seed=42)
    again = ChaosConfig(transient=0.5, seed=42)
    assert chaos.draw("f", 1, "transient") == again.draw("f", 1, "transient")
    # Retried attempts re-roll, functions and modes decorrelate.
    assert chaos.draw("f", 1, "transient") != chaos.draw("f", 2, "transient")
    assert chaos.draw("f", 1, "transient") != chaos.draw("g", 1, "transient")
    assert chaos.draw("f", 1, "crash") != chaos.draw("f", 1, "hang")
    other_seed = ChaosConfig(transient=0.5, seed=43)
    assert chaos.draw("f", 1, "transient") != other_seed.draw("f", 1, "transient")
    assert 0.0 <= chaos.draw("f", 1, "transient") < 1.0


def test_plan_respects_the_function_filter():
    chaos = ChaosConfig(crash=1.0, functions={"poison"})
    assert chaos.plan("poison", 1) == "crash"
    assert chaos.plan("innocent", 1) is None


def test_plan_mode_priority_is_modes_order():
    chaos = ChaosConfig(crash=1.0, hang=1.0, transient=1.0)
    assert chaos.plan("f", 1) == "crash"
    no_crash = ChaosConfig(hang=1.0, transient=1.0)
    assert no_crash.plan("f", 1) == "hang"


def test_zero_rates_never_fire():
    chaos = ChaosConfig()
    assert not chaos.enabled
    assert chaos.plan("f", 1) is None
    assert chaos.inject("f", 1) is None


def test_inject_transient_raises():
    chaos = ChaosConfig(transient=1.0)
    with pytest.raises(TransientFaultError, match=r"injected transient fault in f \(attempt 2\)"):
        chaos.inject("f", 2)


def test_inject_hang_sleeps_then_returns():
    chaos = ChaosConfig(hang=1.0, hang_seconds=0.0)
    assert chaos.inject("f", 1) == "hang"


def test_rate_validation():
    with pytest.raises(ValueError, match=r"chaos rate crash=1.5 outside \[0, 1\]"):
        ChaosConfig(crash=1.5)
    with pytest.raises(ValueError, match="hang_seconds must be >= 0"):
        ChaosConfig(hang_seconds=-1)
    with pytest.raises(ValueError, match="unknown chaos mode"):
        ChaosConfig().rate("flood")


def test_parse_round_trips_the_cli_form():
    chaos = ChaosConfig.parse(
        "crash=0.1, hang=0.2,transient=0.3,seed=7,hang_seconds=2,only=f|g"
    )
    assert chaos.as_dict() == {
        "crash": 0.1,
        "hang": 0.2,
        "transient": 0.3,
        "seed": 7,
        "hang_seconds": 2.0,
        "only": ["f", "g"],
    }


def test_parse_rejects_bad_specs():
    with pytest.raises(ValueError, match="unknown chaos spec key 'frob'"):
        ChaosConfig.parse("frob=1")
    with pytest.raises(ValueError, match="is not key=value"):
        ChaosConfig.parse("crash")
    with pytest.raises(ValueError, match="is not a number"):
        ChaosConfig.parse("crash=lots")
    with pytest.raises(ValueError, match=r"outside \[0, 1\]"):
        ChaosConfig.parse("transient=2.0")
