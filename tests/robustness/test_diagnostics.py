"""Structured diagnostics: summaries, queries, and JSON serialization."""

import json

from repro.robustness import (
    BisectionReport,
    FunctionOutcome,
    PipelineDiagnostics,
)


def populated():
    diags = PipelineDiagnostics()
    diags.record_promoted("fast", duration_ms=1.25, webs_promoted=3)
    diags.record_rollback(
        "broken",
        stage="verify",
        error=AssertionError("broken: phi incoming blocks != preds\nIR dump"),
        duration_ms=2.5,
    )
    diags.record_skip("weird", stage="prepare", reason="unreachable entry")
    diags.warn("profiling run hit the interpreter limit")
    diags.bisection = BisectionReport(["fast", "broken"], ["broken"], 4, True)
    return diags


def test_summary_and_queries():
    diags = populated()
    assert diags.summary() == "1 promoted, 1 rolled back, 1 skipped"
    assert diags.promoted_functions == ["fast"]
    assert diags.rolled_back_functions == ["broken"]
    assert diags.skipped_functions == ["weird"]
    assert not diags.clean
    assert PipelineDiagnostics().clean


def test_rollback_reason_is_first_error_line():
    diags = populated()
    outcome = diags.outcomes["broken"]
    assert outcome.status == FunctionOutcome.ROLLED_BACK
    assert outcome.reason == "broken: phi incoming blocks != preds"
    assert outcome.error_type == "AssertionError"


def test_json_round_trip():
    diags = populated()
    data = json.loads(diags.to_json())
    assert data["summary"] == "1 promoted, 1 rolled back, 1 skipped"
    assert data["warnings"] == ["profiling run hit the interpreter limit"]
    assert data["bisection"] == {
        "candidates": ["fast", "broken"],
        "culprits": ["broken"],
        "tests_run": 4,
        "resolved": True,
    }
    by_name = {entry["name"]: entry for entry in data["functions"]}
    assert by_name["fast"]["status"] == "promoted"
    assert by_name["fast"]["webs_promoted"] == 3
    assert by_name["broken"]["stage"] == "verify"
    assert by_name["weird"]["reason"] == "unreachable entry"


def test_write_to_file(tmp_path):
    path = tmp_path / "diag.json"
    populated().write(str(path))
    data = json.loads(path.read_text())
    assert data["summary"] == "1 promoted, 1 rolled back, 1 skipped"


def test_empty_diagnostics_serialize():
    data = json.loads(PipelineDiagnostics().to_json())
    assert data == {
        "summary": "0 promoted, 0 rolled back, 0 skipped",
        "profile_source": None,
        "functions": [],
        "warnings": [],
        "bisection": None,
        "fallback_reason": None,
        "attempt_histories": {},
        "resilience": None,
        "observability": None,
        "decisions": None,
    }


def test_quarantine_outcome_and_summary_suffix():
    diags = populated()
    diags.record_quarantine(
        "poison",
        reason="3 failed attempt(s), last: worker-crash",
        error_type="BrokenProcessPool",
        attempts=3,
    )
    assert diags.summary() == "1 promoted, 1 rolled back, 1 skipped, 1 quarantined"
    assert diags.quarantined_functions == ["poison"]
    assert not diags.clean
    entry = diags.as_dict()["functions"][-1]
    assert entry["status"] == "quarantined"
    assert entry["attempts"] == 3


def test_degraded_property():
    diags = PipelineDiagnostics()
    assert not diags.degraded
    diags.fallback_reason = {
        "error_type": "PicklingError",
        "detail": "cannot pickle lambda",
        "function": None,
    }
    assert diags.degraded
    diags.fallback_reason = None
    diags.resilience = {"retries": 0, "timeouts": 0, "quarantined": []}
    assert not diags.degraded
    diags.resilience["retries"] = 1
    assert diags.degraded
    diags.resilience = None
    diags.record_quarantine("poison")
    assert diags.degraded
