"""Resilient-executor integration: crash recovery, quarantine isolation,
hang deadlines, transient retry, and chaos-off equivalence.

These tests drive the full pipeline (``PromotionPipeline(resilience=...)``)
rather than the executor alone so the claims they make — survivors
byte-identical to a clean serial run, program behaviour preserved — are
the ones the CLI's exit-code contract rests on.
"""

import time

import pytest

from repro.frontend.lower import compile_source
from repro.ir.printer import print_function, print_module
from repro.promotion.pipeline import PromotionPipeline
from repro.robustness import ChaosConfig, ResilienceOptions

#: Three promotable functions so one can be poisoned while two survive.
SOURCE = """
int acc = 0;
int bump(int k) {
    for (int i = 0; i < 6; i++) acc += k;
    return acc;
}
int drain(int k) {
    for (int i = 0; i < 4; i++) acc -= k;
    return acc;
}
int main() {
    int r = bump(3);
    r = drain(1);
    print(r);
    return r;
}
"""


def run_clean_serial():
    module = compile_source(SOURCE)
    result = PromotionPipeline().run(module)
    return module, result


def run_resilient(resilience, jobs=2):
    module = compile_source(SOURCE)
    result = PromotionPipeline(jobs=jobs, resilience=resilience).run(module)
    return module, result


def function_texts(module):
    return {name: print_function(fn) for name, fn in module.functions.items()}


def test_worker_crash_quarantines_only_the_poison_function():
    clean_module, clean_result = run_clean_serial()
    chaos = ChaosConfig(crash=1.0, functions={"bump"}, seed=1)
    module, result = run_resilient(
        ResilienceOptions(retries=2, chaos=chaos, backoff_base_s=0.01)
    )
    diags = result.diagnostics

    # Only the poisoned function is quarantined; the survivors promote.
    assert diags.quarantined_functions == ["bump"]
    assert sorted(diags.promoted_functions) == ["drain", "main"]
    assert diags.degraded

    # The pool was rebuilt and the crash charged to the culprit only:
    # every one of bump's attempts is a worker-crash, and the survivors
    # completed without burning extra attempts.
    assert diags.resilience["worker_crashes"] == 3
    assert diags.resilience["quarantined"] == ["bump"]
    assert diags.resilience["pool_rebuilds"] >= 1
    history = diags.attempt_histories["bump"]
    assert history["attempts"] == 3
    assert {r["outcome"] for r in history["records"]} == {"worker-crash"}
    for survivor in ("drain", "main"):
        survivor_history = diags.attempt_histories[survivor]
        assert survivor_history["records"][-1]["outcome"] == "promoted"

    # Survivors are byte-identical to the clean serial run, and the
    # quarantined function kept sound (pre-promotion) IR: behaviour and
    # tables are preserved.
    clean_texts = function_texts(clean_module)
    chaos_texts = function_texts(module)
    for survivor in ("drain", "main"):
        assert chaos_texts[survivor] == clean_texts[survivor]
    assert result.output_matches
    assert result.dynamic_before.loads == clean_result.dynamic_before.loads


def test_hang_watchdog_kills_and_quarantines_within_the_deadline_budget():
    chaos = ChaosConfig(hang=1.0, functions={"bump"}, seed=3, hang_seconds=30.0)
    resilience = ResilienceOptions(
        retries=1, timeout_s=0.5, chaos=chaos, backoff_base_s=0.01
    )
    started = time.monotonic()
    module, result = run_resilient(resilience)
    elapsed = time.monotonic() - started
    diags = result.diagnostics

    assert diags.quarantined_functions == ["bump"]
    assert diags.resilience["timeouts"] == 2  # retries=1 -> 2 attempts
    history = diags.attempt_histories["bump"]
    assert [r["outcome"] for r in history["records"]] == ["timeout", "timeout"]
    assert "deadline" in history["records"][0]["reason"]
    # The watchdog killed the sleeping workers: total wall clock is far
    # under the 2 x 30s the injected hangs would have cost, and within
    # a generous multiple of deadline x attempts.
    assert elapsed < 30.0
    assert result.output_matches


def test_transient_faults_are_retried_to_success():
    # seed=11: bump's transient chaos fires on attempt 1 but not 2, so
    # one backoff retry recovers the promotion.
    chaos = ChaosConfig(transient=0.6, functions={"bump"}, seed=11)
    assert chaos.plan("bump", 1) == "transient"
    assert chaos.plan("bump", 2) is None
    module, result = run_resilient(
        ResilienceOptions(retries=2, chaos=chaos, backoff_base_s=0.01)
    )
    diags = result.diagnostics

    assert sorted(diags.promoted_functions) == ["bump", "drain", "main"]
    assert diags.quarantined_functions == []
    assert diags.resilience["transient_faults"] == 1
    assert diags.resilience["retries"] == 1
    assert diags.degraded  # retried, so the run reports degraded
    history = diags.attempt_histories["bump"]
    assert [r["outcome"] for r in history["records"]] == ["transient", "promoted"]
    assert history["records"][0]["backoff_s"] > 0
    assert result.output_matches


def test_chaos_off_resilient_run_matches_serial_exactly():
    clean_module, clean_result = run_clean_serial()
    module, result = run_resilient(ResilienceOptions(retries=2, timeout_s=30.0))
    diags = result.diagnostics

    assert not diags.degraded
    assert diags.resilience["retries"] == 0
    assert diags.resilience["quarantined"] == []
    assert print_module(module) == print_module(clean_module)
    assert sorted(diags.promoted_functions) == sorted(
        clean_result.diagnostics.promoted_functions
    )
    # Every function promoted first try.
    for history in diags.attempt_histories.values():
        assert history["attempts"] == 1
    assert result.output_matches


def test_chaos_runs_are_reproducible_from_their_seed():
    chaos = dict(crash=0.3, transient=0.3, seed=77)
    results = []
    for _ in range(2):
        _, result = run_resilient(
            ResilienceOptions(retries=2, chaos=ChaosConfig(**chaos), backoff_base_s=0.01)
        )
        diags = result.diagnostics
        results.append(
            (
                sorted(diags.quarantined_functions),
                {
                    name: history["attempts"]
                    for name, history in diags.attempt_histories.items()
                },
            )
        )
    assert results[0] == results[1]


def test_resilience_requires_parallel_execution():
    with pytest.raises(ValueError, match="resilience options require parallel"):
        PromotionPipeline(jobs=1, resilience=ResilienceOptions())


def test_resilience_options_validation():
    with pytest.raises(ValueError, match="timeout_s must be > 0"):
        ResilienceOptions(timeout_s=0)
    with pytest.raises(ValueError, match="retries must be >= 0"):
        ResilienceOptions(retries=-1)
    options = ResilienceOptions(retries=4, seed=5)
    assert options.max_attempts == 5
    data = options.as_dict()
    assert data["retries"] == 4
    assert data["seed"] == 5
    assert data["chaos"] is None
    assert data["backoff"]["max_attempts"] == 5
