"""Every verifier-visible FaultInjector mutation must be caught by
``verify_function`` with structured context naming the offending function
and block; the semantic mutations must survive verification (only
re-execution can expose them)."""

import pytest

from repro.ir.parser import parse_module
from repro.ir.verify import VerificationError, verify_function
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.profile.interp import run_module
from repro.robustness import FaultInjector
from repro.robustness.faults import FaultInjectionError

TEXT = """
module m
global @g = 0

func @main() {
entry:
  jmp h
h:
  %i = phi [entry: 0, body: %i2]
  %c = lt %i, 5
  br %c, body, out
body:
  %t = ld @g
  %t2 = add %t, %i
  st @g, %t2
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @g
  ret %r
}
"""


def fresh_function():
    """A verifier-clean function with phis, memory SSA, loads, and stores —
    a site for every mutation class."""
    module = parse_module(TEXT)
    function = module.get_function("main")
    build_memory_ssa(function, AliasModel.conservative(module))
    verify_function(function, check_ssa=True, check_memssa=True)
    return function


@pytest.mark.parametrize("mutation", sorted(FaultInjector.MUTATIONS))
def test_verifier_catches_mutation(mutation):
    function = fresh_function()
    description = FaultInjector().apply(mutation, function)
    assert description  # the injector reports what it edited

    flags = FaultInjector.MUTATIONS[mutation]
    with pytest.raises(VerificationError) as excinfo:
        verify_function(function, **flags)
    error = excinfo.value
    assert error.function == "main"
    assert error.block in {b.name for b in function.blocks}
    assert error.stage in ("structure", "ssa", "memssa")
    assert error.detail
    assert error.detail in str(error)


def test_mutations_map_matches_methods():
    injector = FaultInjector()
    for mutation in FaultInjector.MUTATIONS:
        assert callable(getattr(injector, mutation))


def test_unknown_mutation_rejected():
    with pytest.raises(FaultInjectionError):
        FaultInjector().apply("no_such_mutation", fresh_function())


def test_drop_compensating_store_is_verifier_silent():
    # On IR without memory-SSA annotations the dropped store passes every
    # verifier check; only re-execution can expose it.
    module = parse_module(TEXT)
    function = module.get_function("main")
    description = FaultInjector().apply("drop_compensating_store", function)
    assert "store" in description
    verify_function(function, check_ssa=True, check_memssa=True)

    baseline = run_module(parse_module(TEXT))
    corrupted = run_module(module)
    assert corrupted.return_value != baseline.return_value
    assert corrupted.globals_snapshot() != baseline.globals_snapshot()
