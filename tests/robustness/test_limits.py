"""Interpreter resource exhaustion is catchable and the pipeline degrades
to the static profile estimate instead of aborting."""

import pytest

from repro.ir.parser import parse_module
from repro.profile.interp import (
    Interpreter,
    InterpreterError,
    InterpreterLimitError,
    run_module,
)
from repro.promotion.pipeline import PromotionPipeline

LOOP = """
module m
global @x = 0

func @main() {
entry:
  jmp h
h:
  %i = phi [entry: 0, body: %i2]
  %c = lt %i, 1000
  br %c, body, out
body:
  %t = ld @x
  %t2 = add %t, 1
  st @x, %t2
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @x
  ret %r
}
"""

RECURSION = """
module m

func @spin(%n) {
entry:
  %m2 = add %n, 1
  %r = call @spin(%m2)
  ret %r
}

func @main() {
entry:
  %r = call @spin(0)
  ret %r
}
"""


def test_step_limit_raises_catchable_subclass():
    module = parse_module(LOOP)
    with pytest.raises(InterpreterLimitError) as excinfo:
        Interpreter(module, max_steps=50).run("main", [])
    error = excinfo.value
    assert isinstance(error, InterpreterError)
    assert error.steps > 50
    assert "steps" in str(error)


def test_recursion_limit_raises_catchable_subclass():
    module = parse_module(RECURSION)
    with pytest.raises(InterpreterLimitError) as excinfo:
        Interpreter(module).run("main", [])
    assert excinfo.value.depth > 0


def test_pipeline_falls_back_to_estimator_on_step_limit():
    baseline = run_module(parse_module(LOOP))
    module = parse_module(LOOP)

    result = PromotionPipeline(max_steps=50).run(module)

    # The run completed on the estimated profile; no interpreter counts.
    assert result.profile is not None
    assert result.dynamic_before.total == 0
    assert any("limit" in w for w in result.diagnostics.warnings)
    assert "warning:" in result.report()

    # The transformation itself is still correct.
    assert run_module(module).return_value == baseline.return_value
