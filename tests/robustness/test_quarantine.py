"""Quarantine units: attempt budget, admission, serialization."""

import pytest

from repro.robustness import Quarantine, QuarantineEntry


def test_exhausted_tracks_the_attempt_budget():
    quarantine = Quarantine(limit=3)
    assert not quarantine.exhausted(0)
    assert not quarantine.exhausted(2)
    assert quarantine.exhausted(3)
    assert quarantine.exhausted(4)


def test_admit_and_membership():
    quarantine = Quarantine(limit=2)
    entry = quarantine.admit(
        "poison",
        attempts=2,
        reason="2 failed attempt(s), last: worker-crash",
        last_error_type="BrokenProcessPool",
        last_outcome="worker-crash",
    )
    assert isinstance(entry, QuarantineEntry)
    assert "poison" in quarantine
    assert "clean" not in quarantine
    assert len(quarantine) == 1
    assert quarantine.get("poison") is entry
    assert quarantine.get("clean") is None
    assert [e.name for e in quarantine] == ["poison"]


def test_members_are_sorted():
    quarantine = Quarantine(limit=1)
    quarantine.admit("zeta", 1, reason="boom")
    quarantine.admit("alpha", 1, reason="boom")
    assert quarantine.members == ["alpha", "zeta"]


def test_as_dict_carries_entries_in_member_order():
    quarantine = Quarantine(limit=2)
    quarantine.admit("b", 2, reason="hang", last_outcome="timeout")
    quarantine.admit("a", 2, reason="crash", last_outcome="worker-crash")
    data = quarantine.as_dict()
    assert data["limit"] == 2
    assert [entry["name"] for entry in data["functions"]] == ["a", "b"]
    assert data["functions"][1] == {
        "name": "b",
        "attempts": 2,
        "reason": "hang",
        "last_error_type": None,
        "last_outcome": "timeout",
    }


def test_limit_validation():
    with pytest.raises(ValueError, match="quarantine limit must be >= 1"):
        Quarantine(limit=0)
