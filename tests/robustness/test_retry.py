"""Retry policy units: transience split, backoff shape, seeded jitter."""

import pytest

from repro.robustness import (
    AttemptHistory,
    AttemptRecord,
    RetryPolicy,
    TRANSIENT_ERROR_TYPES,
)


def test_transient_split_matches_the_design():
    policy = RetryPolicy()
    # Worker-infrastructure failures are retried...
    for name in ("TransientFaultError", "BrokenProcessPool", "TimeoutError"):
        assert policy.is_transient(name)
    # ...deterministic promotion failures are not: rerunning
    # deterministic code can only reproduce them.
    for name in ("VerificationError", "AssertionError", "KeyError", None):
        assert not policy.is_transient(name)
    assert "EOFError" in TRANSIENT_ERROR_TYPES


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_max_s=0.35, seed=7)
    delays = [policy.backoff_s("f", attempt) for attempt in (1, 2, 3, 4)]
    # Full (pre-jitter) delays are 0.1, 0.2, 0.35, 0.35; jitter scales
    # each into [0.5, 1.0) of that.
    for delay, full in zip(delays, (0.1, 0.2, 0.35, 0.35)):
        assert 0.5 * full <= delay < full


def test_backoff_is_deterministic_per_seed_and_decorrelated():
    a = RetryPolicy(seed=42)
    b = RetryPolicy(seed=42)
    c = RetryPolicy(seed=43)
    assert a.schedule("f") == b.schedule("f")
    assert a.schedule("f") != c.schedule("f")
    # Different functions retry at different offsets under one seed.
    assert a.backoff_s("f", 1) != a.backoff_s("g", 1)


def test_schedule_has_one_delay_per_non_final_attempt():
    assert RetryPolicy(max_attempts=1).schedule("f") == []
    assert len(RetryPolicy(max_attempts=4).schedule("f")) == 3


def test_policy_validation():
    with pytest.raises(ValueError, match="max_attempts must be >= 1"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="backoff delays must be >= 0"):
        RetryPolicy(backoff_base_s=-0.1)
    with pytest.raises(ValueError, match="attempt numbers start at 1"):
        RetryPolicy().backoff_s("f", 0)


def test_policy_as_dict_round_trips_the_knobs():
    policy = RetryPolicy(
        max_attempts=5, backoff_base_s=0.01, backoff_max_s=1.5, seed=9
    )
    assert policy.as_dict() == {
        "max_attempts": 5,
        "backoff_base_s": 0.01,
        "backoff_max_s": 1.5,
        "seed": 9,
    }


def test_attempt_history_accumulates_and_serializes():
    history = AttemptHistory("f")
    assert history.attempts == 0
    assert history.retries == 0
    assert history.final_outcome is None
    history.add(
        AttemptRecord(
            1,
            AttemptRecord.TRANSIENT,
            error_type="TransientFaultError",
            reason="injected",
            backoff_s=0.05,
        )
    )
    history.add(AttemptRecord(2, AttemptRecord.PROMOTED, duration_ms=3.5))
    assert history.attempts == 2
    assert history.retries == 1
    assert history.final_outcome == AttemptRecord.PROMOTED
    data = history.as_dict()
    assert data["name"] == "f"
    assert data["attempts"] == 2
    assert [r["outcome"] for r in data["records"]] == ["transient", "promoted"]
    assert data["records"][0]["backoff_s"] == 0.05
