"""Per-function transactions in the pipeline: exceptions and verification
failures roll the affected function back and the rest of the module still
promotes."""

import pytest

from repro.ir.parser import parse_module
from repro.memory.aliasing import AliasModel
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline
from repro.robustness import FaultInjector

TEXT = """
module m
global @a = 0
global @b = 0

func @main() {
entry:
  %x = call @good()
  %y = call @bad()
  %s = add %x, %y
  print %s
  ret %s
}

func @good() {
entry:
  jmp h
h:
  %i = phi [entry: 0, body: %i2]
  %c = lt %i, 5
  br %c, body, out
body:
  %t = ld @a
  %t2 = add %t, 1
  st @a, %t2
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @a
  ret %r
}

func @bad() {
entry:
  jmp h
h:
  %i = phi [entry: 0, body: %i2]
  %c = lt %i, 7
  br %c, body, out
body:
  %t = ld @b
  %t2 = add %t, 1
  st @b, %t2
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @b
  ret %r
}
"""


class ExplodingAliasModel(AliasModel):
    """Raises while analysing the function named ``bad``."""

    def tracked_vars(self, function):
        if function.name == "bad":
            raise RuntimeError("alias oracle exploded")
        return super().tracked_vars(function)


def test_exception_rolls_back_one_function():
    baseline = run_module(parse_module(TEXT))
    module = parse_module(TEXT)

    result = PromotionPipeline(alias_model=ExplodingAliasModel).run(module)

    diags = result.diagnostics
    assert diags.rolled_back_functions == ["bad"]
    outcome = diags.outcomes["bad"]
    assert outcome.status == "rolled_back"
    assert outcome.stage == "memssa"
    assert outcome.error_type == "RuntimeError"
    assert outcome.reason == "alias oracle exploded"
    assert set(diags.promoted_functions) == {"main", "good"}

    # Rolled-back functions contribute nothing to the promotion stats.
    assert result.stats["bad"].webs_promoted == 0

    assert result.output_matches
    after = run_module(module)
    assert after.output == baseline.output
    assert after.return_value == baseline.return_value
    assert after.globals_snapshot() == baseline.globals_snapshot()


def test_non_transactional_mode_propagates_exceptions():
    module = parse_module(TEXT)
    pipeline = PromotionPipeline(alias_model=ExplodingAliasModel, transactional=False)
    with pytest.raises(RuntimeError, match="alias oracle exploded"):
        pipeline.run(module)


def test_verification_failure_rolls_back(monkeypatch):
    import repro.promotion.pipeline as pipeline_module

    real_promote = pipeline_module.promote_function
    injector = FaultInjector()

    def sabotaged(function, mssa, profile, tree, options):
        stats = real_promote(function, mssa, profile, tree, options)
        if function.name == "bad":
            injector.apply("dangling_phi_incoming", function)
        return stats

    monkeypatch.setattr(pipeline_module, "promote_function", sabotaged)

    baseline = run_module(parse_module(TEXT))
    module = parse_module(TEXT)
    result = PromotionPipeline().run(module)

    diags = result.diagnostics
    assert diags.rolled_back_functions == ["bad"]
    outcome = diags.outcomes["bad"]
    assert outcome.error_type == "VerificationError"
    assert outcome.stage in ("cleanup", "verify")
    assert set(diags.promoted_functions) == {"main", "good"}

    assert result.output_matches
    after = run_module(module)
    assert after.output == baseline.output
    assert after.globals_snapshot() == baseline.globals_snapshot()


def test_promotion_error_names_web_and_interval(monkeypatch):
    import repro.promotion.driver as driver_module
    from repro.promotion import PromotionError

    real_plan = driver_module.plan_web

    def sabotaged(web, profile, domtree, count_tail_stores=False):
        if web.var.name == "b":
            raise KeyError("profit table corrupted")
        return real_plan(web, profile, domtree, count_tail_stores=count_tail_stores)

    monkeypatch.setattr(driver_module, "plan_web", sabotaged)

    module = parse_module(TEXT)
    result = PromotionPipeline().run(module)

    outcome = result.diagnostics.outcomes["bad"]
    assert outcome.status == "rolled_back"
    assert outcome.stage == "promote"
    assert outcome.error_type == "PromotionError"
    # The wrapped error pinpoints the web and interval, not just the
    # function.
    assert "@b" in outcome.reason
    assert "bad" in outcome.reason
    assert result.output_matches

    with pytest.raises(PromotionError) as excinfo:
        PromotionPipeline(transactional=False).run(parse_module(TEXT))
    error = excinfo.value
    # Calls are may-defs of @b under the conservative model, so main
    # also carries a @b web and explodes first in module order.
    assert error.function in ("main", "bad")
    assert error.var == "b"
    assert error.interval is not None
    assert isinstance(error.__cause__, KeyError)


def test_prepare_failure_skips_function(monkeypatch):
    import repro.promotion.pipeline as pipeline_module

    real_construct = pipeline_module.construct_ssa

    def sabotaged(function):
        if function.name == "bad":
            raise ValueError("mem2reg refused")
        return real_construct(function)

    monkeypatch.setattr(pipeline_module, "construct_ssa", sabotaged)

    baseline = run_module(parse_module(TEXT))
    module = parse_module(TEXT)
    result = PromotionPipeline().run(module)

    diags = result.diagnostics
    assert diags.skipped_functions == ["bad"]
    outcome = diags.outcomes["bad"]
    assert outcome.status == "skipped"
    assert outcome.stage == "prepare"
    assert outcome.error_type == "ValueError"
    # Skipped functions never reach promotion at all.
    assert "bad" not in result.stats
    assert set(diags.promoted_functions) == {"main", "good"}

    assert result.output_matches
    after = run_module(module)
    assert after.output == baseline.output
    assert after.globals_snapshot() == baseline.globals_snapshot()


def test_clean_run_has_clean_diagnostics():
    module = parse_module(TEXT)
    result = PromotionPipeline().run(module)
    diags = result.diagnostics
    assert diags.clean
    assert set(diags.promoted_functions) == {"main", "good", "bad"}
    assert diags.bisection is None
    assert "3 promoted, 0 rolled back, 0 skipped" in result.report()
