"""Snapshot/rollback round-trips: restoring must reproduce the exact IR
text and behaviour while keeping module-level identity (the interpreter
keys storage by variable identity)."""

from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.ir.printer import print_function
from repro.profile.interp import run_module
from repro.robustness import FaultInjector, capture_state, snapshot_function

TEXT = """
module m
global @g = 0

func @main() {
entry:
  jmp h
h:
  %i = phi [entry: 0, body: %i2]
  %c = lt %i, 5
  br %c, body, out
body:
  %t = ld @g
  %t2 = add %t, %i
  st @g, %t2
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @g
  ret %r
}
"""


def test_restore_round_trips_ir_text():
    module = parse_module(TEXT)
    function = module.get_function("main")
    original = print_function(function)

    snap = snapshot_function(function)
    assert print_function(function) == original  # snapshotting is pure

    FaultInjector().apply("drop_compensating_store", function)
    assert print_function(function) != original

    restored = snap.restore()
    assert restored is function  # same object: external refs stay valid
    assert print_function(function) == original
    for block in function.blocks:
        assert block.function is function
        for inst in block.instructions:
            assert inst.block is block


def test_restore_preserves_behaviour_and_global_identity():
    module = parse_module(TEXT)
    function = module.get_function("main")
    baseline = run_module(module)

    snap = snapshot_function(function)
    FaultInjector().apply("drop_compensating_store", function)
    snap.restore()

    # The restored IR must reference the module's own global objects —
    # the alias model and interpreter rely on identity, not name.
    for inst in function.instructions():
        if isinstance(inst, (I.Load, I.Store)):
            assert inst.var is module.globals[inst.var.name]

    after = run_module(module)
    assert after.return_value == baseline.return_value
    assert after.output == baseline.output
    assert after.globals_snapshot() == baseline.globals_snapshot()


def test_capture_state_toggles_between_versions():
    # The cheap FunctionState capture is what bisection uses to flip a
    # function between its promoted and pre-promotion IR.
    module = parse_module(TEXT)
    function = module.get_function("main")
    original_text = print_function(function)

    snap = snapshot_function(function)
    FaultInjector().apply("drop_compensating_store", function)
    mutated_text = print_function(function)
    mutated = capture_state(function)

    snap.restore()
    assert print_function(function) == original_text
    mutated.install(function)
    assert print_function(function) == mutated_text
    snap.restore()
    assert print_function(function) == original_text
    for block in function.blocks:
        assert block.function is function


def test_restore_is_idempotent():
    module = parse_module(TEXT)
    function = module.get_function("main")
    original = print_function(function)
    snap = snapshot_function(function)
    FaultInjector().apply("drop_compensating_store", function)
    snap.restore()
    snap.restore()
    assert print_function(function) == original
    assert run_module(module).return_value == 10
