"""The issue's acceptance scenario: with a deliberately unsound alias
model the pipeline must still terminate with behaviour-preserving IR —
the re-execution oracle detects the divergence, bisection isolates the
culprit functions, and the diagnostics name every rollback with a
reason."""

from repro.ir.parser import parse_module
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline
from repro.robustness import UnsoundAliasModel

TEXT = """
module m
global @a = 0
global @x = 0

func @main() {
entry:
  %r1 = call @clean()
  %r2 = call @alias_trap()
  %s = add %r1, %r2
  print %s
  ret %s
}

func @clean() {
entry:
  jmp h
h:
  %i = phi [entry: 0, body: %i2]
  %c = lt %i, 8
  br %c, body, out
body:
  %t = ld @a
  %t2 = add %t, 1
  st @a, %t2
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @a
  ret %r
}

func @alias_trap() {
entry:
  %p = addr @x
  jmp h
h:
  %i = phi [entry: 0, latch: %i2]
  %c = lt %i, 10
  br %c, body, out
body:
  %t = ld @x
  %t2 = add %t, 1
  st @x, %t2
  %cc = eq %i, 5
  br %cc, hit, latch
hit:
  stp %p, 100
  jmp latch
latch:
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @x
  ret %r
}
"""


def test_pipeline_recovers_from_unsound_aliasing():
    baseline = run_module(parse_module(TEXT))
    module = parse_module(TEXT)

    # Must complete without raising even though the alias model lies.
    result = PromotionPipeline(alias_model=UnsoundAliasModel).run(module)

    assert result.output_matches
    final = run_module(module)
    assert final.output == baseline.output
    assert final.return_value == baseline.return_value
    assert final.globals_snapshot() == baseline.globals_snapshot()

    diags = result.diagnostics
    # The function whose pointer store the model denied must be rolled
    # back; the alias-free function must keep its promotion.
    assert "alias_trap" in diags.rolled_back_functions
    assert "clean" in diags.promoted_functions
    for name in diags.rolled_back_functions:
        outcome = diags.outcomes[name]
        assert outcome.stage == "re-execution"
        assert outcome.reason  # every rollback is explained

    report = diags.bisection
    assert report is not None
    assert report.resolved
    assert "alias_trap" in report.culprits
    assert set(report.culprits) <= set(report.candidates)
    assert report.tests_run >= 1
    assert any("bisect" in w for w in diags.warnings)

    text = result.report()
    assert "rolled back" in text
    assert "warning:" in text


def test_non_transactional_pipeline_cannot_recover():
    # The same unsound model without transactions: the run finishes (the
    # promoted IR is verifier-clean) but behaviour is silently wrong.
    module = parse_module(TEXT)
    result = PromotionPipeline(
        alias_model=UnsoundAliasModel, transactional=False
    ).run(module)
    assert not result.output_matches
