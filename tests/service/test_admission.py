"""Admission control: bounded queueing, honest shedding, drain."""

import asyncio

import pytest

from repro.service.admission import AdmissionController
from repro.service.errors import AdmissionRejectedError, ServiceUnavailableError


def test_validation():
    with pytest.raises(ValueError):
        AdmissionController(capacity=0, max_queue=1)
    with pytest.raises(ValueError):
        AdmissionController(capacity=1, max_queue=-1)


def test_slot_tracks_inflight():
    async def body():
        ctrl = AdmissionController(capacity=2, max_queue=2)
        async with ctrl.slot():
            assert ctrl.inflight == 1
        assert ctrl.inflight == 0
        assert ctrl.admitted_total == 1

    asyncio.run(body())


def test_sheds_when_the_wait_line_is_full():
    async def body():
        ctrl = AdmissionController(capacity=1, max_queue=1)
        release = asyncio.Event()
        started = asyncio.Event()

        async def hold():
            async with ctrl.slot():
                started.set()
                await release.wait()

        async def queued():
            async with ctrl.slot():
                pass

        holder = asyncio.ensure_future(hold())
        await started.wait()
        waiter = asyncio.ensure_future(queued())
        await asyncio.sleep(0)  # let the waiter join the line
        assert ctrl.waiting == 1

        with pytest.raises(AdmissionRejectedError) as excinfo:
            async with ctrl.slot():
                pass
        assert excinfo.value.http_status == 429
        assert excinfo.value.retry_after_s is not None
        assert excinfo.value.retry_after_s > 0

        release.set()
        await asyncio.gather(holder, waiter)
        assert ctrl.shed_total == 1
        assert ctrl.admitted_total == 2

    asyncio.run(body())


def test_draining_rejects_immediately():
    async def body():
        ctrl = AdmissionController(capacity=1, max_queue=4)
        assert await ctrl.drain(0.1) is True
        with pytest.raises(ServiceUnavailableError) as excinfo:
            async with ctrl.slot():
                pass
        assert excinfo.value.reason == "draining"
        assert excinfo.value.http_status == 503

    asyncio.run(body())


def test_drain_that_starts_while_a_waiter_queues_still_wins():
    async def body():
        ctrl = AdmissionController(capacity=1, max_queue=2)
        release = asyncio.Event()
        started = asyncio.Event()

        async def hold():
            async with ctrl.slot():
                started.set()
                await release.wait()

        async def queued():
            async with ctrl.slot():
                pass

        holder = asyncio.ensure_future(hold())
        await started.wait()
        waiter = asyncio.ensure_future(queued())
        await asyncio.sleep(0)
        drain = asyncio.ensure_future(ctrl.drain(5.0))
        await asyncio.sleep(0)
        release.set()
        results = await asyncio.gather(
            holder, waiter, drain, return_exceptions=True
        )
        assert results[0] is None
        # The queued admission acquired its slot after the drain began,
        # so it must be rejected, not silently run.
        assert isinstance(results[1], ServiceUnavailableError)
        assert results[2] is True

    asyncio.run(body())


def test_drain_times_out_on_stuck_inflight():
    async def body():
        ctrl = AdmissionController(capacity=1, max_queue=1)
        release = asyncio.Event()
        started = asyncio.Event()

        async def hold():
            async with ctrl.slot():
                started.set()
                await release.wait()

        holder = asyncio.ensure_future(hold())
        await started.wait()
        assert await ctrl.drain(0.05) is False
        release.set()
        await holder

    asyncio.run(body())


def test_retry_after_tracks_durations_and_clamps():
    async def body():
        ctrl = AdmissionController(capacity=2, max_queue=2)
        assert ctrl.retry_after_s() == pytest.approx(1.0)  # EWMA seed
        ctrl.observe_duration(9.0)
        assert ctrl.avg_duration_s == pytest.approx(0.3 * 9.0 + 0.7 * 1.0)
        ctrl.observe_duration(-5.0)  # nonsense durations are ignored
        assert ctrl.avg_duration_s == pytest.approx(3.4)
        ctrl.avg_duration_s = 1000.0
        assert ctrl.retry_after_s() == 30.0  # clamp high
        ctrl.avg_duration_s = 0.0001
        assert ctrl.retry_after_s() == 0.1  # clamp low

    asyncio.run(body())


def test_as_dict_shape():
    async def body():
        ctrl = AdmissionController(capacity=2, max_queue=3)
        doc = ctrl.as_dict()
        assert doc["capacity"] == 2
        assert doc["max_queue"] == 3
        assert doc["draining"] is False
        assert doc["retry_after_s"] > 0

    asyncio.run(body())
