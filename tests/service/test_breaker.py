"""Circuit breaker state machine, driven by an injected clock."""

import pytest

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(threshold=3, reset_s=5.0, clock=clock)


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_s=0)


def test_stays_closed_below_threshold(breaker):
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.retry_after_s() == 0.0


def test_success_resets_the_failure_streak(breaker):
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED


def test_trips_at_threshold_and_refuses(breaker):
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 1
    assert not breaker.allow()
    assert breaker.retry_after_s() == pytest.approx(5.0)


def test_half_opens_after_backoff_admitting_one_probe(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()  # the probe
    assert breaker.state == HALF_OPEN
    assert not breaker.allow()  # one probe at a time


def test_probe_success_closes_and_resets_backoff(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.as_dict()["backoff_s"] == pytest.approx(5.0)


def test_probe_failure_reopens_with_doubled_backoff(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.retry_after_s() == pytest.approx(10.0)
    clock.advance(5.0)
    assert not breaker.allow()  # still inside the doubled backoff
    clock.advance(5.0)
    assert breaker.allow()


def test_backoff_multiplier_caps_at_16x(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    for _ in range(8):  # far more probe failures than the cap
        clock.advance(breaker.as_dict()["backoff_s"])
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.as_dict()["backoff_s"] == pytest.approx(5.0 * 16)


def test_neutral_releases_the_probe_slot_without_closing(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_neutral()  # client-caused outcome: proves nothing
    assert breaker.state == HALF_OPEN
    assert breaker.allow()  # the slot is free for the next probe
    breaker.record_success()
    assert breaker.state == CLOSED


def test_neutral_in_closed_state_is_harmless(breaker):
    breaker.record_failure()
    breaker.record_neutral()
    assert breaker.state == CLOSED
    assert breaker.consecutive_failures == 1


def test_as_dict_shape(breaker):
    doc = breaker.as_dict()
    assert doc["state"] == CLOSED
    assert doc["threshold"] == 3
    assert doc["trips"] == 0
