"""Seeded service-level chaos plans: pure, replayable, parseable."""

import pytest

from repro.service.chaos import ServiceChaosConfig


def test_plans_are_a_pure_function_of_the_seed():
    first = ServiceChaosConfig(drop=0.3, slow=0.3, disconnect=0.3, seed=26)
    second = ServiceChaosConfig(drop=0.3, slow=0.3, disconnect=0.3, seed=26)
    plans = [first.plan(i) for i in range(64)]
    assert plans == [second.plan(i) for i in range(64)]


def test_different_seeds_give_different_schedules():
    a = ServiceChaosConfig(drop=0.5, seed=1)
    b = ServiceChaosConfig(drop=0.5, seed=2)
    assert [a.plan(i) for i in range(64)] != [b.plan(i) for i in range(64)]


def test_zero_rates_never_fire():
    chaos = ServiceChaosConfig(seed=7)
    assert not chaos.enabled
    assert all(chaos.plan(i) is None for i in range(32))


def test_certain_rates_always_fire_in_mode_order():
    chaos = ServiceChaosConfig(drop=1.0, malformed=1.0, seed=3)
    # Both fire; the first mode in MODES order wins.
    assert all(chaos.plan(i) == "drop" for i in range(16))


def test_rates_roughly_track_over_many_requests():
    chaos = ServiceChaosConfig(malformed=0.5, seed=11)
    fired = sum(1 for i in range(200) if chaos.plan(i) == "malformed")
    assert 50 < fired < 150


def test_draw_is_in_unit_interval():
    chaos = ServiceChaosConfig(seed=5)
    for i in range(16):
        for mode in ServiceChaosConfig.MODES:
            assert 0.0 <= chaos.draw(i, mode) < 1.0


def test_parse_round_trips_the_cli_spec():
    chaos = ServiceChaosConfig.parse(
        "drop=0.2,slow=0.15,disconnect=0.2,malformed=0.2,seed=26,slow_delay_s=2"
    )
    assert chaos.as_dict() == {
        "drop": 0.2,
        "slow": 0.15,
        "disconnect": 0.2,
        "malformed": 0.2,
        "seed": 26,
        "slow_delay_s": 2.0,
    }
    assert chaos.enabled


@pytest.mark.parametrize(
    "spec",
    [
        "drop",  # not key=value
        "warp=0.5",  # unknown key
        "drop=lots",  # not a number
        "drop=1.5",  # outside [0, 1]
    ],
)
def test_bad_specs_raise(spec):
    with pytest.raises(ValueError):
        ServiceChaosConfig.parse(spec)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        ServiceChaosConfig(seed=1).rate("warp")
