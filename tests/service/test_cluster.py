"""Unit tests for the cluster topology parsing layer.

:class:`ClusterConfig` is the static shard list every ``repro-route``
invocation starts from; its error messages are operator-facing, so the
rejection shapes are pinned alongside the happy paths.
"""

import pytest

from repro.service.cluster import ClusterConfig


class TestParseSpec:
    def test_host_port(self):
        assert ClusterConfig.parse_spec("127.0.0.1:8900") == ("127.0.0.1", 8900)

    def test_hostname(self):
        assert ClusterConfig.parse_spec("shard-3.internal:80") == (
            "shard-3.internal",
            80,
        )

    def test_whitespace_is_tolerated(self):
        assert ClusterConfig.parse_spec("  localhost:9000 ") == ("localhost", 9000)

    @pytest.mark.parametrize(
        "spec",
        ["no-port", ":8900", "host:", "host:abc", "host:0", "host:70000"],
    )
    def test_rejections_name_the_spec(self, spec):
        with pytest.raises(ValueError) as excinfo:
            ClusterConfig.parse_spec(spec)
        assert repr(spec.strip()) in str(excinfo.value) or spec in str(
            excinfo.value
        )


class TestClusterConfig:
    def test_requires_at_least_one_backend(self):
        with pytest.raises(ValueError, match="at least one backend"):
            ClusterConfig([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate backend"):
            ClusterConfig([("a", 1), ("a", 1)])

    def test_ids(self):
        config = ClusterConfig([("a", 1), ("b", 2)])
        assert config.ids() == ["a:1", "b:2"]

    def test_from_file_with_comments_and_blanks(self, tmp_path):
        listing = tmp_path / "backends.txt"
        listing.write_text(
            "# production shards\n"
            "10.0.0.1:8900\n"
            "\n"
            "10.0.0.2:8900  # canary\n"
        )
        config = ClusterConfig.from_file(str(listing))
        assert config.ids() == ["10.0.0.1:8900", "10.0.0.2:8900"]

    def test_from_file_missing_is_a_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            ClusterConfig.from_file(str(tmp_path / "absent.txt"))

    def test_from_args_file_first_then_flags(self, tmp_path):
        listing = tmp_path / "backends.txt"
        listing.write_text("10.0.0.1:8900\n")
        config = ClusterConfig.from_args(
            ["10.0.0.2:8900"], backends_file=str(listing)
        )
        assert config.ids() == ["10.0.0.1:8900", "10.0.0.2:8900"]

    def test_from_args_flags_only(self):
        config = ClusterConfig.from_args(["a:1", "b:2"])
        assert config.ids() == ["a:1", "b:2"]

    def test_from_args_duplicate_across_sources(self, tmp_path):
        listing = tmp_path / "backends.txt"
        listing.write_text("a:1\n")
        with pytest.raises(ValueError, match="duplicate backend"):
            ClusterConfig.from_args(["a:1"], backends_file=str(listing))
