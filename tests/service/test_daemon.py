"""In-process end-to-end tests of the HTTP daemon.

A real listener on a real socket, driven by raw asyncio connections in
the same loop — covering routing, structured rejections, deadlines,
load shedding, the circuit breaker, streaming, and graceful drain.
"""

import asyncio
import contextlib
import json

import pytest

from repro.frontend.lower import compile_source
from repro.ir.printer import print_module
from repro.profile.interp import Interpreter
from repro.promotion.pipeline import PromotionPipeline
from repro.service.config import ServiceConfig
from repro.service.daemon import PromotionDaemon

PROGRAM = """
int total = 0;
int bump(int k) { total += k; return total; }
int main() {
    for (int i = 0; i < 40; i++) bump(i);
    print(total);
    return total % 251;
}
"""

BUSY_PROGRAM = """
int sink = 0;
int main() {
    for (int i = 0; i < 800; i++) {
        for (int j = 0; j < 300; j++) sink += j;
    }
    return sink % 17;
}
"""


def reference(source):
    module = compile_source(source)
    PromotionPipeline(entry="main", args=[]).run(module)
    run = Interpreter(module).run("main", [])
    return (
        print_module(module),
        [" ".join(str(v) for v in values) for values in run.output],
        run.return_value & 0xFF,
    )


@contextlib.asynccontextmanager
async def running_daemon(**overrides):
    daemon = PromotionDaemon(ServiceConfig(**overrides))
    host, port = await daemon.start()
    try:
        yield daemon, host, port
    finally:
        await daemon.drain_and_stop()


async def request(host, port, method, path, body=None, raw_body=None):
    """One HTTP/1.1 exchange; returns (status, decoded-JSON-or-lines)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = raw_body
    if payload is None:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    writer.write(head + payload)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    status = int(head_bytes.split(b" ", 2)[1])
    if b"application/x-ndjson" in head_bytes:
        return status, [
            json.loads(line)
            for line in body_bytes.decode("utf-8").splitlines()
            if line.strip()
        ]
    return status, json.loads(body_bytes) if body_bytes else None


def post_job(host, port, source, options=None, path="/v1/jobs"):
    payload = {"kind": "minic", "source": source}
    if options:
        payload["options"] = options
    return request(host, port, "POST", path, body=payload)


def test_health_ready_metrics():
    async def body():
        async with running_daemon(workers=1) as (daemon, host, port):
            status, doc = await request(host, port, "GET", "/healthz")
            assert status == 200
            assert doc["status"] == "ok"
            assert doc["breaker"]["state"] == "closed"
            assert doc["admission"]["capacity"] == 1
            assert doc["engine"]["jobs_total"] == 0

            status, doc = await request(host, port, "GET", "/readyz")
            assert status == 200
            assert doc == {"ready": True}

            status, doc = await request(host, port, "GET", "/metrics")
            assert status == 200
            assert set(doc) == {"admission", "breaker", "engine"}
        assert daemon.drained_clean is True

    asyncio.run(body())


def test_job_is_byte_identical_and_then_cached():
    ir, output, rv = reference(PROGRAM)

    async def body():
        async with running_daemon(workers=1) as (_, host, port):
            status, doc = await post_job(host, port, PROGRAM)
            assert status == 200
            assert doc["status"] == "ok"
            assert doc["ir"] == ir
            assert doc["output"] == output
            assert doc["return_value"] == rv
            assert doc["cached"] is False

            status, doc = await post_job(host, port, PROGRAM)
            assert status == 200
            assert doc["cached"] is True
            assert doc["ir"] == ir

    asyncio.run(body())


def test_structured_rejections():
    async def body():
        async with running_daemon(workers=1) as (_, host, port):
            status, doc = await request(host, port, "GET", "/nope")
            assert status == 404 and doc["error"] == "not-found"

            status, doc = await request(
                host, port, "POST", "/v1/jobs", raw_body=b"{not json"
            )
            assert status == 400 and doc["error"] == "invalid-job"

            status, doc = await post_job(
                host, port, PROGRAM, options={"warp": 9}
            )
            assert status == 400 and "unknown job option" in doc["message"]

            status, doc = await post_job(host, port, "int main( {")
            assert status == 422 and doc["error"] == "invalid-source"

            status, doc = await request(
                host, port, "PUT", "/v1/jobs", body={"source": PROGRAM}
            )
            assert status == 404

    asyncio.run(body())


def test_oversized_body_bounces_with_413():
    async def body():
        async with running_daemon(workers=1, max_body_bytes=64) as (
            _,
            host,
            port,
        ):
            status, doc = await post_job(host, port, PROGRAM)
            assert status == 413
            assert doc["error"] == "payload-too-large"

    asyncio.run(body())


def test_deadline_exceeded_is_a_504():
    async def body():
        async with running_daemon(workers=1, drain_grace_s=30.0) as (
            daemon,
            host,
            port,
        ):
            status, doc = await post_job(
                host,
                port,
                BUSY_PROGRAM,
                options={"deadline_s": 0.05, "max_steps": 5_000_000},
            )
            assert status == 504
            assert doc["error"] == "deadline-exceeded"
            # The abandoned thread must finish and accounting recover
            # before drain, or shutdown would block on it.
            while daemon.engine.abandoned:
                await asyncio.sleep(0.05)

    asyncio.run(body())


def test_burst_sheds_with_429_and_retry_after():
    async def body():
        async with running_daemon(workers=1, max_queue=1) as (_, host, port):
            # Distinct sources defeat the result cache so every job
            # really occupies the single worker for a while.
            sources = [
                BUSY_PROGRAM.replace("% 17", f"% {19 + i}") for i in range(4)
            ]
            outcomes = await asyncio.gather(
                *(post_job(host, port, src) for src in sources)
            )
            statuses = sorted(status for status, _ in outcomes)
            assert 200 in statuses
            assert 429 in statuses
            for status, doc in outcomes:
                if status == 429:
                    assert doc["error"] == "overloaded"
                    assert doc["retry_after_s"] > 0

    asyncio.run(body())


def test_breaker_opens_after_a_crash_storm():
    async def body():
        async with running_daemon(workers=1, breaker_threshold=2) as (
            daemon,
            host,
            port,
        ):
            def boom(job, deadline_s, job_id, started, observability=None):
                raise RuntimeError("engine on fire")

            daemon.engine._run_pipeline = boom
            for _ in range(2):
                status, doc = await post_job(host, port, PROGRAM)
                assert status == 500
                assert doc["error"] == "engine-failure"

            status, doc = await post_job(host, port, PROGRAM)
            assert status == 503
            assert doc["reason"] == "circuit-open"
            assert doc["retry_after_s"] > 0

            status, doc = await request(host, port, "GET", "/readyz")
            assert status == 503
            assert doc["reason"] == "circuit-open"

    asyncio.run(body())


def test_streaming_emits_spans_then_the_result():
    ir, output, rv = reference(PROGRAM)

    async def body():
        async with running_daemon(workers=1) as (_, host, port):
            status, lines = await post_job(
                host, port, PROGRAM, path="/v1/jobs?stream=1"
            )
            assert status == 200
            assert lines, "stream produced no events"
            spans = [line for line in lines if line["event"] == "span"]
            assert spans, "stream carried no span events"
            final = lines[-1]
            assert final["event"] == "result"
            assert final["ir"] == ir
            assert final["output"] == output
            assert final["return_value"] == rv
            assert final["cached"] is False

    asyncio.run(body())


def test_streaming_error_is_the_final_event():
    async def body():
        async with running_daemon(workers=1) as (_, host, port):
            status, lines = await post_job(
                host, port, "int main( {", path="/v1/jobs?stream=1"
            )
            assert status == 200  # the head was sent before the job ran
            assert lines[-1]["event"] == "error"
            assert lines[-1]["error"] == "invalid-source"

    asyncio.run(body())


async def traced_request(host, port, path, body, traceparent):
    """POST with a ``traceparent`` header; returns (status, response
    headers as a lowercase dict, decoded JSON or NDJSON lines)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"traceparent: {traceparent}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    writer.write(head + payload)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    head_lines = head_bytes.decode("ascii").split("\r\n")
    status = int(head_lines[0].split(" ", 2)[1])
    headers = {}
    for line in head_lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    if "ndjson" in headers.get("content-type", ""):
        decoded = [
            json.loads(line)
            for line in body_bytes.decode("utf-8").splitlines()
            if line.strip()
        ]
    else:
        decoded = json.loads(body_bytes) if body_bytes else None
    return status, headers, decoded


def test_traceparent_is_echoed_on_plain_jobs():
    trace_id = "ab" * 16
    header = f"00-{trace_id}-{'cd' * 8}-01"

    async def body():
        async with running_daemon(workers=1) as (_, host, port):
            status, headers, doc = await traced_request(
                host, port, "/v1/jobs", {"kind": "minic", "source": PROGRAM}, header
            )
            assert status == 200
            assert headers["x-repro-trace-id"] == trace_id
            assert doc["trace_id"] == trace_id

            # A rejection still correlates: the echo header survives.
            status, headers, doc = await traced_request(
                host, port, "/v1/jobs", {"kind": "minic", "source": "  "}, header
            )
            assert status == 400
            assert headers["x-repro-trace-id"] == trace_id

    asyncio.run(body())


def test_streaming_trace_is_one_connected_tree_under_the_callers_id():
    trace_id = "12" * 16
    caller_span = "fe" * 8
    header = f"00-{trace_id}-{caller_span}-01"

    async def body():
        async with running_daemon(workers=1) as (_, host, port):
            status, headers, lines = await traced_request(
                host,
                port,
                "/v1/jobs?stream=1",
                {"kind": "minic", "source": PROGRAM},
                header,
            )
            assert status == 200
            assert headers["x-repro-trace-id"] == trace_id

            spans = [line for line in lines if line["event"] == "span"]
            roots = [s for s in spans if s["parent"] is None]
            assert len(roots) == 1, "streamed trace must have one root span"
            root = roots[0]
            assert root["name"] == "daemon:job"
            assert root["attrs"]["trace_id"] == trace_id
            assert root["attrs"]["parent_span_id"] == caller_span
            # Every root-stamped span belongs to the caller's trace.
            stamped = {
                s["attrs"]["trace_id"] for s in spans if "trace_id" in s["attrs"]
            }
            assert stamped == {trace_id}

            final = lines[-1]
            assert final["event"] == "result"
            assert final["trace_id"] == trace_id

    asyncio.run(body())


def test_drain_refuses_new_connections_and_reports_clean():
    async def body():
        async with running_daemon(workers=1) as (daemon, host, port):
            status, _ = await post_job(host, port, PROGRAM)
            assert status == 200
            await daemon.drain_and_stop()
            assert daemon.drained_clean is True
            assert daemon.health()["status"] == "draining"
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection(host, port)
            # Draining twice is idempotent.
            await daemon.drain_and_stop()
            assert daemon.drained_clean is True

    asyncio.run(body())
