"""The promotion engine: byte-identity, warm caches, deadlines.

The invariant under test everywhere: a job that completes through the
engine yields the same IR text, printed output, and return value as a
fresh serial pipeline run of the same payload.
"""

import asyncio
import time

import pytest

from repro.frontend.limits import InputLimits
from repro.robustness.faults import ChaosConfig
from repro.frontend.lower import compile_source
from repro.ir.printer import print_module
from repro.profile.interp import Interpreter
from repro.promotion.pipeline import PromotionPipeline
from repro.service.engine import PromotionEngine
from repro.service.errors import DeadlineExceededError, JobInputError
from repro.service.jobs import JobRequest

PROGRAM = """
int total = 0;
int bump(int k) { total += k; return total; }
int main() {
    for (int i = 0; i < 40; i++) bump(i);
    print(total);
    return total % 251;
}
"""

# Enough interpreter steps to outlive a millisecond-scale deadline, but
# bounded so the abandoned thread finishes promptly in the background.
BUSY_PROGRAM = """
int sink = 0;
int main() {
    for (int i = 0; i < 800; i++) {
        for (int j = 0; j < 300; j++) sink += j;
    }
    return sink % 17;
}
"""

POISON_PROGRAM = """
int acc = 0;
int step(int k) { acc += k; return acc; }
int main() {
    for (int i = 0; i < 25; i++) step(i);
    print(acc);
    return 5;
}
"""


def reference(source, entry="main", args=()):
    """A fresh serial pipeline run: the byte-identity oracle."""
    module = compile_source(source)
    PromotionPipeline(entry=entry, args=list(args)).run(module)
    run = Interpreter(module).run(entry, list(args))
    return (
        print_module(module),
        [" ".join(str(v) for v in values) for values in run.output],
        run.return_value & 0xFF,
    )


@pytest.fixture
def engine():
    eng = PromotionEngine(workers=2)
    yield eng
    eng.shutdown(wait=True)


def test_completed_job_is_byte_identical_to_a_fresh_serial_run(engine):
    ir, output, rv = reference(PROGRAM)
    result = engine.execute(JobRequest("minic", PROGRAM), 30.0, "job-1")
    assert result.ir == ir
    assert result.output == output
    assert result.return_value == rv
    assert result.output_matches
    assert not result.degraded
    assert not result.cached


def test_result_cache_serves_identical_bytes(engine):
    first = engine.execute(JobRequest("minic", PROGRAM), 30.0, "job-1")
    second = engine.execute(JobRequest("minic", PROGRAM), 30.0, "job-2")
    assert second.cached
    assert engine.result_cache_hits == 1
    assert (second.ir, second.output, second.return_value) == (
        first.ir,
        first.output,
        first.return_value,
    )
    assert second.job_id == "job-2"  # identity is per-request, not cached


def test_non_default_jobs_bypass_the_result_cache(engine):
    job = JobRequest("minic", PROGRAM, max_steps=1_000_000)
    engine.execute(job, 30.0, "job-1")
    engine.execute(job, 30.0, "job-2")
    assert engine.result_cache_hits == 0


def test_ir_kind_round_trips_through_the_parser(engine):
    ir_text = print_module(compile_source(PROGRAM))
    _, output, rv = reference(PROGRAM)
    result = engine.execute(JobRequest("ir", ir_text), 30.0, "job-1")
    assert result.output == output
    assert result.return_value == rv
    assert result.output_matches


def test_compile_error_is_a_client_fault(engine):
    with pytest.raises(JobInputError) as excinfo:
        engine.execute(JobRequest("minic", "int main( {"), 30.0, "job-1")
    assert excinfo.value.http_status == 422
    assert "compile error" in str(excinfo.value)
    assert engine.failed_total == 1


def test_frontend_limit_trip_names_the_limit():
    engine = PromotionEngine(workers=1, limits=InputLimits(max_source_bytes=16))
    try:
        with pytest.raises(JobInputError) as excinfo:
            engine.execute(JobRequest("minic", PROGRAM), 30.0, "job-1")
        assert excinfo.value.limit == "source size"
    finally:
        engine.shutdown(wait=True)


def test_runtime_error_in_submitted_program_is_a_client_fault(engine):
    with pytest.raises(JobInputError) as excinfo:
        engine.execute(
            JobRequest("minic", PROGRAM, max_steps=10), 30.0, "job-1"
        )
    assert "execution failed" in str(excinfo.value)


def test_deadline_abandons_the_thread_and_recovers(engine):
    job = JobRequest("minic", BUSY_PROGRAM, max_steps=5_000_000)

    async def body():
        with pytest.raises(DeadlineExceededError) as excinfo:
            await engine.run_job(job, 0.05, "job-1")
        assert excinfo.value.http_status == 504
        assert engine.abandoned == 1
        # The abandoned thread runs to completion in the background and
        # the engine's accounting recovers.
        deadline = time.monotonic() + 30.0
        while engine.abandoned and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        assert engine.abandoned == 0
        assert await engine.probe()

    asyncio.run(body())


def test_poisoned_parallel_job_degrades_but_preserves_behaviour(engine):
    _, output, rv = reference(POISON_PROGRAM)
    job = JobRequest(
        "minic",
        POISON_PROGRAM,
        jobs=2,
        retries=1,
        chaos=ChaosConfig.parse("crash=1.0,only=step,seed=1"),
    )
    result = engine.execute(job, 60.0, "job-1")
    assert result.degraded
    assert "step" in result.quarantined
    assert result.output == output
    assert result.return_value == rv
    assert result.output_matches
    assert engine.degraded_total == 1
