"""Strict validation of the job envelope.

A malformed payload must bounce with a structured JobValidationError
naming the offending field — before it can occupy a worker slot.
"""

import pytest

from repro.service.errors import JobValidationError
from repro.service.jobs import JobRequest

PROGRAM = "int main() { return 7; }"


def test_minimal_payload_fills_defaults():
    job = JobRequest.from_payload({"source": PROGRAM})
    assert job.kind == "minic"
    assert job.entry == "main"
    assert job.args == []
    assert job.jobs == 1
    assert job.use_cache is True
    assert job.deadline_s is None
    assert not job.wants_resilience
    assert job.is_default_run


def test_full_payload_round_trips():
    job = JobRequest.from_payload(
        {
            "kind": "minic",
            "source": PROGRAM,
            "entry": "main",
            "args": [1, 2],
            "options": {
                "jobs": 2,
                "use_cache": False,
                "deadline_s": 5,
                "timeout_s": 2.5,
                "retries": 1,
                "chaos": "crash=0.5,seed=9",
                "max_steps": 1000,
            },
        }
    )
    assert job.jobs == 2
    assert job.use_cache is False
    assert job.deadline_s == 5.0
    assert job.timeout_s == 2.5
    assert job.retries == 1
    assert job.chaos is not None and job.chaos.seed == 9
    assert job.max_steps == 1000
    assert job.wants_resilience
    assert not job.is_default_run


def test_trace_field_parses_into_a_trace_context():
    header = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
    job = JobRequest.from_payload({"source": PROGRAM, "trace": header})
    assert job.trace is not None
    assert job.trace.trace_id == "ab" * 16
    assert job.trace.parent_span_id == "cd" * 8
    # Absent means no trace, not an error.
    assert JobRequest.from_payload({"source": PROGRAM}).trace is None


@pytest.mark.parametrize(
    "payload,fragment",
    [
        pytest.param("nope", "must be a JSON object", id="non-object"),
        pytest.param({"source": PROGRAM, "bogus": 1}, "unknown job field", id="unknown-field"),
        pytest.param({"source": PROGRAM, "kind": "rust"}, "kind must be one of", id="bad-kind"),
        pytest.param({}, "'source' must be a string", id="missing-source"),
        pytest.param({"source": 7}, "'source' must be a string", id="non-string-source"),
        pytest.param({"source": "  "}, "must be non-empty", id="blank-source"),
        pytest.param({"source": PROGRAM, "entry": "not an id"}, "identifier", id="bad-entry"),
        pytest.param({"source": PROGRAM, "args": "1,2"}, "list of integers", id="args-string"),
        pytest.param({"source": PROGRAM, "args": [True]}, "list of integers", id="args-bool"),
        pytest.param({"source": PROGRAM, "args": list(range(65))}, "limited to 64", id="args-flood"),
        pytest.param({"source": PROGRAM, "options": []}, "'options' must be an object", id="options-list"),
        pytest.param({"source": PROGRAM, "options": {"nope": 1}}, "unknown job option", id="unknown-option"),
        pytest.param({"source": PROGRAM, "options": {"jobs": True}}, "'jobs' must be an integer", id="jobs-bool"),
        pytest.param({"source": PROGRAM, "options": {"jobs": 65}}, "0..64", id="jobs-flood"),
        pytest.param({"source": PROGRAM, "options": {"use_cache": 1}}, "boolean", id="use-cache-int"),
        pytest.param({"source": PROGRAM, "options": {"deadline_s": 0}}, "'deadline_s' must be > 0", id="zero-deadline"),
        pytest.param({"source": PROGRAM, "options": {"deadline_s": "fast"}}, "must be a number", id="deadline-string"),
        pytest.param({"source": PROGRAM, "options": {"jobs": 2, "timeout_s": -1}}, "'timeout_s' must be > 0", id="negative-timeout"),
        pytest.param({"source": PROGRAM, "options": {"jobs": 2, "retries": 17}}, "0..16", id="retries-flood"),
        pytest.param({"source": PROGRAM, "options": {"jobs": 2, "retries": False}}, "'retries' must be an integer", id="retries-bool"),
        pytest.param({"source": PROGRAM, "options": {"jobs": 2, "chaos": 3}}, "'chaos' must be a string", id="chaos-int"),
        pytest.param({"source": PROGRAM, "options": {"jobs": 2, "chaos": "crash=lots"}}, "job option 'chaos'", id="chaos-junk"),
        pytest.param({"source": PROGRAM, "options": {"max_steps": 0}}, "max_steps", id="zero-max-steps"),
        pytest.param({"source": PROGRAM, "options": {"max_steps": True}}, "'max_steps' must be an integer", id="max-steps-bool"),
        pytest.param({"source": PROGRAM, "options": {"timeout_s": 2}}, "require jobs != 1", id="resilience-serial"),
        pytest.param({"source": PROGRAM, "trace": 7}, "'trace' must be a traceparent string", id="trace-int"),
        pytest.param({"source": PROGRAM, "trace": "not-a-traceparent"}, "not a valid traceparent", id="trace-junk"),
        pytest.param({"source": PROGRAM, "trace": "00-" + "0" * 32 + "-" + "1" * 16 + "-01"}, "not a valid traceparent", id="trace-zero-id"),
    ],
)
def test_bad_payloads_bounce_with_the_field_named(payload, fragment):
    with pytest.raises(JobValidationError) as excinfo:
        JobRequest.from_payload(payload)
    assert fragment in str(excinfo.value)
    assert excinfo.value.http_status == 400


def test_default_run_is_narrow():
    assert not JobRequest("minic", PROGRAM, jobs=2).is_default_run
    assert not JobRequest("minic", PROGRAM, use_cache=False).is_default_run
    assert not JobRequest("minic", PROGRAM, max_steps=10).is_default_run
    # A custom deadline alone does not disqualify caching: it bounds
    # *when* the job may run, not what it computes.
    assert JobRequest("minic", PROGRAM, deadline_s=5).is_default_run


def test_cache_key_material_distinguishes_every_identity_field():
    base = JobRequest("minic", PROGRAM, entry="main", args=[1])
    variants = [
        JobRequest("ir", PROGRAM, entry="main", args=[1]),
        JobRequest("minic", PROGRAM + " ", entry="main", args=[1]),
        JobRequest("minic", PROGRAM, entry="other", args=[1]),
        JobRequest("minic", PROGRAM, entry="main", args=[2]),
    ]
    keys = {v.cache_key_material() for v in variants}
    assert base.cache_key_material() not in keys
    assert len(keys) == 4
