"""In-process end-to-end tests of the front-tier router.

A real :class:`PromotionRouter` on a real socket, in front of real
:class:`PromotionDaemon` instances (for byte-identity, stickiness, and
streaming) and canned fake backends (for the failure matrix: 5xx,
connect errors, 429 propagation, drain rerouting) — all in one loop.
"""

import asyncio
import contextlib
import json

import pytest

from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.daemon import PromotionDaemon
from repro.service.router import (
    DOWN,
    DRAINING,
    HEALTHY,
    BackendState,
    HealthTracker,
    PromotionRouter,
    RouterConfig,
)
from repro.service.router import main as router_main
from repro.service.smoke import fresh_serial_run

PROGRAM = """
int total = 0;
int bump(int k) { total += k; return total; }
int main() {
    for (int i = 0; i < 25; i++) bump(i);
    print(total);
    return total % 251;
}
"""


def payload_for(source=PROGRAM):
    return {"kind": "minic", "source": source}


class FakeBackend:
    """A canned upstream: healthy on probes, scripted on job posts."""

    def __init__(self, status=200, body=None):
        self.status = status
        self.body = json.dumps(body if body is not None else {"ok": True}).encode()
        self.jobs_seen = 0
        self.server = None
        self.host = ""
        self.port = 0

    async def start(self):
        self.server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.host, self.port = self.server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def stop(self):
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()

    async def _handle(self, reader, writer):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
            first = head.split(b"\r\n", 1)[0].decode("latin-1")
            length = 0
            for line in head.decode("latin-1").split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            if length:
                await reader.readexactly(length)
            if first.startswith("GET /healthz"):
                status, body = 200, b'{"status": "ok"}'
            elif first.startswith("GET /readyz"):
                status, body = 200, b'{"ready": true}'
            else:
                self.jobs_seen += 1
                status, body = self.status, self.body
            writer.write(
                (
                    f"HTTP/1.1 {status} X\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


@contextlib.asynccontextmanager
async def running_router(backends, **overrides):
    overrides.setdefault("poll_interval_s", 30.0)
    router = PromotionRouter(RouterConfig(backends, **overrides))
    host, port = await router.start()
    try:
        yield router, ServiceClient(host, port, timeout_s=30.0)
    finally:
        await router.drain_and_stop()


@contextlib.asynccontextmanager
async def running_daemons(count):
    """Yields [(daemon, host, port), ...] for ``count`` live daemons."""
    daemons = []
    try:
        for _ in range(count):
            daemon = PromotionDaemon(ServiceConfig(workers=1))
            host, port = await daemon.start()
            daemons.append((daemon, host, port))
        yield daemons
    finally:
        for daemon, _, _ in daemons:
            await daemon.drain_and_stop()


def homed_source(router, target_id):
    """A compilable program whose HRW home is ``target_id`` — found by
    enumeration, deterministic because the hash is pure."""
    for i in range(200):
        source = f"int main() {{ print({i}); return {i % 7}; }}"
        _, _, order = router.plan(payload_for(source))
        if order[0] == target_id:
            return source
    raise AssertionError(f"no candidate homed at {target_id}")


def counter(router, name):
    return router.metrics.value(name) or 0


def test_endpoints_and_metrics_shape():
    async def body():
        fake = FakeBackend()
        await fake.start()
        async with running_router([(fake.host, fake.port)]) as (router, client):
            health = (await client.get("/healthz")).json()
            assert health["status"] == "ok"
            assert list(health["backends"]) == [fake.host + f":{fake.port}"]

            ready = await client.get("/readyz")
            assert ready.status == 200
            assert ready.json()["ready"] is True

            metrics = (await client.get("/metrics")).json()
            assert set(metrics) == {"router", "stickiness_hit_rate", "backends"}

            missing = await client.get("/nope")
            assert missing.status == 404
        await fake.stop()

    asyncio.run(body())


def test_byte_identity_and_stickiness_through_router():
    async def body():
        async with running_daemons(2) as daemons:
            backends = [(host, port) for _, host, port in daemons]
            async with running_router(backends) as (router, client):
                payload = payload_for()
                _, _, order = router.plan(payload)

                first = await client.submit(payload)
                assert first.status == 200
                doc = first.json()
                ir, output, return_value = fresh_serial_run(payload)
                assert doc["ir"] == ir
                assert doc["output"] == output
                assert doc["return_value"] == return_value
                assert first.headers["x-repro-backend"] == order[0]

                # Warm resubmits stay on the home shard.
                for _ in range(3):
                    again = await client.submit(payload)
                    assert again.headers["x-repro-backend"] == order[0]
                assert router.stickiness_hit_rate() == 1.0
                assert counter(router, "router.failovers") == 0

    asyncio.run(body())


def test_failover_when_home_daemon_leaves():
    async def body():
        async with running_daemons(2) as daemons:
            backends = [(host, port) for _, host, port in daemons]
            async with running_router(backends) as (router, client):
                payload = payload_for()
                _, _, order = router.plan(payload)
                home = next(
                    d for d, host, port in daemons if f"{host}:{port}" == order[0]
                )
                await home.drain_and_stop()

                response = await client.submit(payload)
                assert response.status == 200
                assert response.headers["x-repro-backend"] == order[1]
                assert counter(router, "router.failovers") == 1
                # Stickiness accounting is honest about the miss.
                assert router.stickiness_hit_rate() == 0.0

    asyncio.run(body())


def test_5xx_fails_over_and_relays_the_survivor():
    async def body():
        broken = FakeBackend(status=500, body={"error": "boom"})
        healthy = FakeBackend(status=200, body={"ok": True})
        await broken.start()
        await healthy.start()
        backends = [(broken.host, broken.port), (healthy.host, healthy.port)]
        async with running_router(backends) as (router, client):
            source = homed_source(router, f"{broken.host}:{broken.port}")
            response = await client.submit(payload_for(source))
            assert response.status == 200
            assert response.json() == {"ok": True}
            assert response.headers["x-repro-backend"] == (
                f"{healthy.host}:{healthy.port}"
            )
            assert broken.jobs_seen == 1
            assert counter(router, "router.failovers") == 1
        await broken.stop()
        await healthy.stop()

    asyncio.run(body())


def test_429_propagates_with_retry_hint_no_failover():
    async def body():
        shedding = FakeBackend(
            status=429,
            body={"error": "overloaded", "retry_after_s": 1.5},
        )
        idle = FakeBackend()
        await shedding.start()
        await idle.start()
        backends = [(shedding.host, shedding.port), (idle.host, idle.port)]
        async with running_router(backends) as (router, client):
            source = homed_source(router, f"{shedding.host}:{shedding.port}")
            response = await client.submit(payload_for(source))
            # The shard's own load estimate is honest: relay it, don't
            # chase a second backend.
            assert response.status == 429
            assert response.json()["retry_after_s"] == 1.5
            assert idle.jobs_seen == 0
            assert counter(router, "router.failovers") == 0
            assert counter(router, "router.jobs.rejected") == 1
        await shedding.stop()
        await idle.stop()

    asyncio.run(body())


def test_draining_503_reroutes_and_marks_backend():
    async def body():
        leaving = FakeBackend(
            status=503,
            body={"error": "unavailable", "reason": "draining"},
        )
        survivor = FakeBackend()
        await leaving.start()
        await survivor.start()
        backends = [(leaving.host, leaving.port), (survivor.host, survivor.port)]
        async with running_router(backends) as (router, client):
            leaving_id = f"{leaving.host}:{leaving.port}"
            source = homed_source(router, leaving_id)
            response = await client.submit(payload_for(source))
            assert response.status == 200
            assert router.backends[leaving_id].status == DRAINING
            # The next job skips the draining shard without dialing it.
            seen = leaving.jobs_seen
            again = await client.submit(payload_for(source))
            assert again.status == 200
            assert leaving.jobs_seen == seen
            assert counter(router, "router.skips.draining") >= 1
        await leaving.stop()
        await survivor.stop()

    asyncio.run(body())


def test_all_backends_dead_yields_structured_503():
    async def body():
        # Grab two ports that nothing listens on.
        dead = []
        for _ in range(2):
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            dead.append(server.sockets[0].getsockname()[:2])
            server.close()
            await server.wait_closed()
        async with running_router(dead) as (router, client):
            response = await client.submit(payload_for())
            assert response.status == 503
            doc = response.json()
            assert doc["reason"] == "no-backend"
            assert doc["retry_after_s"] > 0
            assert counter(router, "router.jobs.unrouted") == 1

    asyncio.run(body())


def test_streaming_passthrough_keeps_one_timeline():
    async def body():
        async with running_daemons(1) as daemons:
            backends = [(host, port) for _, host, port in daemons]
            async with running_router(backends) as (router, client):
                events = await client.submit(payload_for(), stream=True)
                assert events
                assert events[-1]["event"] == "result"
                assert any(e.get("event") == "span" for e in events)
                assert counter(router, "router.jobs.stream") == 1

    asyncio.run(body())


def test_garbage_payload_routes_by_digest_and_relays_4xx():
    async def body():
        async with running_daemons(1) as daemons:
            backends = [(host, port) for _, host, port in daemons]
            async with running_router(backends) as (router, client):
                response = await client.request(
                    "POST", "/v1/jobs", b"{not json at all"
                )
                assert 400 <= response.status < 500
                assert "x-repro-backend" in response.headers
                assert counter(router, "router.fingerprint.fallbacks") == 1

    asyncio.run(body())


class TestHealthTracker:
    def make(self, down_after=2):
        state = BackendState("127.0.0.1", 9999, 3, 5.0)
        tracker = HealthTracker({state.id: state}, down_after=down_after)
        return tracker, state

    def test_ready_probe_keeps_healthy(self):
        tracker, state = self.make()
        tracker.apply_probe(state, {"status": "ok"}, 200, {"ready": True})
        assert state.status == HEALTHY
        assert state.strikes == 0

    def test_draining_is_immediate(self):
        tracker, state = self.make()
        tracker.apply_probe(
            state,
            {"status": "draining"},
            503,
            {"ready": False, "reason": "draining"},
        )
        assert state.status == DRAINING
        assert tracker.transitions_total == 1

    def test_down_needs_consecutive_strikes(self):
        tracker, state = self.make(down_after=2)
        tracker.apply_probe(state, None, None, None, error="ConnectionRefusedError")
        assert state.status == HEALTHY
        tracker.apply_probe(state, None, None, None, error="ConnectionRefusedError")
        assert state.status == DOWN

    def test_healthy_answer_rehabilitates(self):
        tracker, state = self.make(down_after=1)
        tracker.apply_probe(state, None, None, None, error="TimeoutError")
        assert state.status == DOWN
        tracker.apply_probe(state, {"status": "ok"}, 200, {"ready": True})
        assert state.status == HEALTHY
        assert state.strikes == 0

    def test_one_blip_does_not_evict(self):
        tracker, state = self.make(down_after=2)
        tracker.apply_probe(state, None, None, None, error="TimeoutError")
        tracker.apply_probe(state, {"status": "ok"}, 200, {"ready": True})
        tracker.apply_probe(state, None, None, None, error="TimeoutError")
        assert state.status == HEALTHY

    def test_not_ready_strikes(self):
        tracker, state = self.make(down_after=2)
        for _ in range(2):
            tracker.apply_probe(
                state, {"status": "ok"}, 503, {"ready": False, "reason": "breaker"}
            )
        assert state.status == DOWN

    def test_note_draining_from_dispatch(self):
        tracker, state = self.make()
        tracker.note_draining(state)
        assert state.status == DRAINING
        assert tracker.counts() == {HEALTHY: 0, DRAINING: 1, DOWN: 0}

    def test_warm_pools_surface_from_health_doc(self):
        tracker, state = self.make()
        tracker.apply_probe(
            state,
            {"status": "ok", "engine": {"warm_pools": {"2": 1}}},
            200,
            {"ready": True},
        )
        assert state.warm_pools() == {"2": 1}


def test_print_plan_reports_fingerprint_and_backend(tmp_path, capsys):
    module = tmp_path / "program.c"
    module.write_text(PROGRAM)
    rc = router_main(
        [
            "--print-plan",
            str(module),
            "--backend",
            "127.0.0.1:9001",
            "--backend",
            "127.0.0.1:9002",
            "--backend",
            "127.0.0.1:9003",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert lines[0].startswith("fingerprint ")
    assert "(module)" in lines[0]
    assert lines[1].startswith("backend 127.0.0.1:")
    assert lines[2].startswith("failover ")
    assert len(lines[2].split(" -> ")) == 2


def test_print_plan_missing_file_is_a_config_error(tmp_path, capsys):
    rc = router_main(
        ["--print-plan", str(tmp_path / "absent.c"), "--backend", "a:1"]
    )
    assert rc == 2
    assert "cannot read" in capsys.readouterr().err


def test_router_config_rejects_bad_shapes():
    with pytest.raises(ValueError):
        RouterConfig([])
    with pytest.raises(ValueError):
        RouterConfig([("a", 1), ("a", 1)])
    with pytest.raises(ValueError):
        RouterConfig([("a", 1)], down_after=0)
