"""Unit tests for the pure routing layer: rendezvous hashing and the
fingerprint resolver.

Everything here is deterministic and IO-free, so the properties the
sharded tier leans on — restart-stable placement, minimal
redistribution, digest fallback for hostile payloads — are pinned
exhaustively.
"""

import pytest

from repro.service.routing import (
    KEY_DIGEST,
    KEY_MODULE,
    FingerprintResolver,
    hrw_order,
)

BACKENDS = [f"127.0.0.1:{9000 + i}" for i in range(5)]

PROGRAM = """
int total = 0;
int main() {
    for (int i = 0; i < 10; i++) total += i;
    print(total);
    return 0;
}
"""

OTHER_PROGRAM = """
int x = 1;
int main() { x = x + 41; return x; }
"""


def keys(n):
    return [f"key-{i}" for i in range(n)]


class TestHrwOrder:
    def test_order_is_a_permutation(self):
        order = hrw_order("some-key", BACKENDS)
        assert sorted(order) == sorted(BACKENDS)

    def test_deterministic_across_instances(self):
        # Two independent computations — the same agreement a router
        # restart (or a second router instance) depends on.
        for key in keys(50):
            assert hrw_order(key, BACKENDS) == hrw_order(key, list(BACKENDS))

    def test_independent_of_input_order(self):
        for key in keys(20):
            assert hrw_order(key, BACKENDS) == hrw_order(
                key, list(reversed(BACKENDS))
            )

    def test_keys_spread_over_backends(self):
        homes = {hrw_order(key, BACKENDS)[0] for key in keys(200)}
        # 200 keys over 5 backends: every backend should be somebody's
        # home (probability of a miss is astronomically small).
        assert homes == set(BACKENDS)

    def test_minimal_redistribution_on_removal(self):
        removed = BACKENDS[2]
        survivors = [b for b in BACKENDS if b != removed]
        moved = 0
        for key in keys(300):
            before = hrw_order(key, BACKENDS)[0]
            after = hrw_order(key, survivors)[0]
            if before == removed:
                # Its keys must move, and exactly to their old #2 choice.
                assert after == hrw_order(key, BACKENDS)[1]
            elif before != after:
                moved += 1
        assert moved == 0, f"{moved} keys moved whose home survived"

    def test_failover_tail_is_consistent(self):
        # Removing a backend leaves the relative order of the rest
        # unchanged — the HRW scores are per-(key, backend).
        for key in keys(50):
            full = hrw_order(key, BACKENDS)
            reduced = hrw_order(key, BACKENDS[1:])
            assert [b for b in full if b != BACKENDS[0]] == reduced

    def test_single_backend(self):
        assert hrw_order("k", ["a:1"]) == ["a:1"]


class TestFingerprintResolver:
    def test_same_source_same_key(self):
        resolver = FingerprintResolver()
        key1, kind1 = resolver.resolve({"kind": "minic", "source": PROGRAM})
        key2, kind2 = FingerprintResolver().resolve(
            {"kind": "minic", "source": PROGRAM}
        )
        assert kind1 == kind2 == KEY_MODULE
        assert key1 == key2

    def test_entry_and_args_do_not_affect_key(self):
        # The module is the locality unit: the same program with a
        # different entry/args wants the same shard's warm caches.
        resolver = FingerprintResolver()
        base, _ = resolver.resolve({"kind": "minic", "source": PROGRAM})
        varied, _ = resolver.resolve(
            {
                "kind": "minic",
                "source": PROGRAM,
                "entry": "main",
                "args": [1, 2, 3],
                "options": {"deadline_s": 9},
            }
        )
        assert varied == base

    def test_different_source_different_key(self):
        resolver = FingerprintResolver()
        one, _ = resolver.resolve({"kind": "minic", "source": PROGRAM})
        two, _ = resolver.resolve({"kind": "minic", "source": OTHER_PROGRAM})
        assert one != two

    def test_uncompilable_source_falls_back_to_stable_digest(self):
        resolver = FingerprintResolver()
        bad = {"kind": "minic", "source": "int main( {{{ not a program"}
        key1, kind = resolver.resolve(bad)
        key2, _ = FingerprintResolver().resolve(dict(bad))
        assert kind == KEY_DIGEST
        assert key1 == key2
        assert resolver.counters()["fallbacks"] == 1

    def test_non_dict_payload_falls_back(self):
        resolver = FingerprintResolver()
        for payload in (None, 7, ["a", "list"], {"source": 12}):
            key, kind = resolver.resolve(payload)
            assert kind == KEY_DIGEST
            assert key
        assert resolver.counters()["fallbacks"] == 4

    def test_unknown_kind_falls_back(self):
        key, kind = FingerprintResolver().resolve(
            {"kind": "fortran", "source": "PROGRAM HELLO"}
        )
        assert kind == KEY_DIGEST
        assert key

    def test_ir_kind_resolves_module_fingerprint(self):
        from repro.frontend.lower import compile_source
        from repro.ir.printer import print_module

        ir_text = print_module(compile_source(PROGRAM))
        key, kind = FingerprintResolver().resolve(
            {"kind": "ir", "source": ir_text}
        )
        assert kind == KEY_MODULE
        assert key

    def test_cache_hits_are_counted_and_compile_once(self):
        resolver = FingerprintResolver()
        for _ in range(5):
            resolver.resolve({"kind": "minic", "source": PROGRAM})
        counters = resolver.counters()
        assert counters["compiled"] == 1
        assert counters["cache_hits"] == 4
        assert counters["entries"] == 1

    def test_lru_evicts_oldest(self):
        resolver = FingerprintResolver(cache_size=2)
        sources = [PROGRAM, OTHER_PROGRAM, PROGRAM.replace("10", "11")]
        for source in sources:
            resolver.resolve({"kind": "minic", "source": source})
        assert resolver.counters()["entries"] == 2
        # The first program was evicted: resolving it compiles again.
        resolver.resolve({"kind": "minic", "source": sources[0]})
        assert resolver.counters()["compiled"] == 4

    def test_cache_size_zero_disables_caching(self):
        resolver = FingerprintResolver(cache_size=0)
        resolver.resolve({"kind": "minic", "source": PROGRAM})
        resolver.resolve({"kind": "minic", "source": PROGRAM})
        counters = resolver.counters()
        assert counters["entries"] == 0
        assert counters["compiled"] == 2

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            FingerprintResolver(cache_size=-1)
