"""The stdio-JSONL transport, exercised through a real subprocess.

One envelope per stdin line, one response per stdout line; EOF drains
the daemon and the process exits 0 on a clean drain.
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

PROGRAM = """
int total = 0;
int bump(int k) { total += k; return total; }
int main() {
    for (int i = 0; i < 40; i++) bump(i);
    print(total);
    return total % 251;
}
"""


def test_stdio_envelopes_round_trip_and_eof_drains_cleanly():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--stdio", "--workers", "1"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    lines = [
        json.dumps({"id": 1, "job": {"kind": "minic", "source": PROGRAM}}),
        json.dumps({"id": 2, "job": {"kind": "minic", "source": "int main( {"}}),
        json.dumps({"id": 3, "job": 7}),
        "{broken json",
    ]
    try:
        out, err = proc.communicate("\n".join(lines) + "\n", timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    assert proc.returncode == 0, err
    assert "listening on " in err

    responses = [json.loads(line) for line in out.splitlines() if line.strip()]
    assert len(responses) == 4
    by_id = {doc.get("id"): doc for doc in responses if doc.get("id") is not None}

    ok = by_id[1]["result"]
    assert ok["status"] == "ok"
    assert ok["return_value"] == 780 % 251
    assert ok["output"] == ["780"]

    assert by_id[2]["error"]["error"] == "invalid-source"
    assert by_id[3]["error"]["error"] == "invalid-job"

    unparsable = [doc for doc in responses if doc.get("id") is None]
    assert len(unparsable) == 1
    assert unparsable[0]["error"]["error"] == "invalid-job"
