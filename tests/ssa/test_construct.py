from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.ir.verify import verify_function
from repro.profile.interp import run_module
from repro.ssa.construct import construct_ssa, promotable_locals


def _loads_stores(func):
    loads = [i for i in func.instructions() if isinstance(i, I.Load)]
    stores = [i for i in func.instructions() if isinstance(i, I.Store)]
    return loads, stores


def test_straightline_local_promoted():
    module = parse_module(
        """
        func @main() {
          local @y = 0
        entry:
          st @y, 4
          %t = ld @y
          %u = add %t, 1
          ret %u
        }
        """
    )
    func = module.get_function("main")
    before = run_module(module).return_value
    assert construct_ssa(func) == 1
    verify_function(func, check_ssa=True)
    loads, stores = _loads_stores(func)
    assert loads == [] and stores == []
    assert "y" not in func.frame_vars
    assert run_module(module).return_value == before == 5


def test_branch_merges_with_phi():
    module = parse_module(
        """
        func @main(%c) {
          local @y = 0
        entry:
          br %c, a, b
        a:
          st @y, 1
          jmp join
        b:
          st @y, 2
          jmp join
        join:
          %t = ld @y
          ret %t
        }
        """
    )
    func = module.get_function("main")
    construct_ssa(func)
    verify_function(func, check_ssa=True)
    join = func.find_block("join")
    phis = list(join.phis())
    assert len(phis) == 1
    assert run_module(module, args=[1]).return_value == 1
    assert run_module(module, args=[0]).return_value == 2


def test_loop_variable_gets_phi():
    module = parse_module(
        """
        func @main() {
          local @i = 0
          local @sum = 0
        entry:
          st @i, 0
          st @sum, 0
          jmp header
        header:
          %i = ld @i
          %c = lt %i, 5
          br %c, body, done
        body:
          %s = ld @sum
          %s2 = add %s, %i
          st @sum, %s2
          %i2 = add %i, 1
          st @i, %i2
          jmp header
        done:
          %r = ld @sum
          ret %r
        }
        """
    )
    func = module.get_function("main")
    before = run_module(module).return_value
    construct_ssa(func)
    verify_function(func, check_ssa=True)
    loads, stores = _loads_stores(func)
    assert loads == [] and stores == []
    header_phis = list(func.find_block("header").phis())
    assert len(header_phis) == 2  # i and sum
    assert run_module(module).return_value == before == 10


def test_address_taken_local_not_promoted():
    module = parse_module(
        """
        func @main() {
          local @y = 0
          local @z = 0
        entry:
          %p = addr @y
          st @y, 1
          st @z, 2
          %t = ld @z
          ret %t
        }
        """
    )
    func = module.get_function("main")
    assert [v.name for v in promotable_locals(func)] == ["z"]
    construct_ssa(func)
    assert "y" in func.frame_vars
    assert "z" not in func.frame_vars
    loads, stores = _loads_stores(func)
    assert {s.var.name for s in stores} == {"y"}


def test_globals_never_promoted_by_mem2reg():
    module = parse_module(
        """
        module m
        global @g = 0
        func @main() {
        entry:
          st @g, 1
          %t = ld @g
          ret %t
        }
        """
    )
    func = module.get_function("main")
    assert construct_ssa(func) == 0
    loads, stores = _loads_stores(func)
    assert len(loads) == 1 and len(stores) == 1


def test_uninitialized_read_is_zero():
    module = parse_module(
        """
        func @main(%c) {
          local @y = 0
        entry:
          br %c, setb, join
        setb:
          st @y, 9
          jmp join
        join:
          %t = ld @y
          ret %t
        }
        """
    )
    func = module.get_function("main")
    construct_ssa(func)
    verify_function(func, check_ssa=True)
    assert run_module(module, args=[0]).return_value == 0
    assert run_module(module, args=[1]).return_value == 9


def test_load_chain_resolved_transitively():
    module = parse_module(
        """
        func @main() {
          local @a = 0
          local @b = 0
        entry:
          st @a, 3
          %t = ld @a
          st @b, %t
          %u = ld @b
          ret %u
        }
        """
    )
    func = module.get_function("main")
    construct_ssa(func)
    verify_function(func, check_ssa=True)
    assert run_module(module).return_value == 3


def test_local_array_untouched():
    module = parse_module(
        """
        func @main() {
          local @buf[3] = 0
        entry:
          sta @buf, 1, 5
          %t = lda @buf, 1
          ret %t
        }
        """
    )
    func = module.get_function("main")
    assert construct_ssa(func) == 0
    assert "buf" in func.frame_vars
    assert run_module(module).return_value == 5
