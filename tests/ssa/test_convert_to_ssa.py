"""The update's third application: incrementally converting a resource
to SSA form, cross-checked against the standard memory-SSA builder."""

import pytest

from repro.frontend.lower import compile_source
from repro.ir import instructions as I
from repro.ir.verify import verify_function
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.ssa.incremental import convert_var_to_ssa

from tests.property.genprog import random_program

PROGRAM = """
int x = 0;
int y = 5;
void tick() { y = y + x; }
int main() {
    for (int i = 0; i < 20; i++) {
        x += i;
        if (x % 7 == 0) tick();
    }
    print(x, y);
    return x;
}
"""


def _signature(func, var):
    """(use-site, definer-kind) pairs for every reference of ``var``."""
    sig = []
    for block in func.blocks:
        for idx, inst in enumerate(block.instructions):
            if isinstance(inst, I.MemPhi):
                continue
            for name in inst.mem_uses:
                if name.var is var:
                    definer = name.def_inst
                    kind = type(definer).__name__ if definer else "entry"
                    dblock = definer.block.name if definer else "-"
                    sig.append((block.name, idx, kind, dblock))
    return sig


def test_matches_standard_construction():
    module = compile_source(PROGRAM)
    func = module.get_function("main")
    model = AliasModel.conservative(module)
    x = module.get_global("x")

    build_memory_ssa(func, model)
    reference = _signature(func, x)

    # Re-convert just @x through the incremental path.
    convert_var_to_ssa(func, x, model)
    verify_function(func, check_ssa=True)
    assert _signature(func, x) == reference


def test_phis_are_subset_of_minimal_ssa():
    # The update only keeps *live* phis; the standard builder places
    # minimal (but possibly dead) phis.
    module = compile_source(PROGRAM)
    func = module.get_function("main")
    model = AliasModel.conservative(module)
    x = module.get_global("x")

    build_memory_ssa(func, model)
    minimal = sum(
        1 for i in func.instructions() if isinstance(i, I.MemPhi) and i.var is x
    )
    convert_var_to_ssa(func, x, model)
    incremental = sum(
        1 for i in func.instructions() if isinstance(i, I.MemPhi) and i.var is x
    )
    assert incremental <= minimal


@pytest.mark.parametrize("seed", [2, 11, 400, 9001])
def test_random_programs_convert_consistently(seed):
    source = random_program(seed)
    module = compile_source(source)
    model = AliasModel.conservative(module)
    for func in module.functions.values():
        build_memory_ssa(func, model)
        for var in model.tracked_vars(func):
            reference = _signature(func, var)
            convert_var_to_ssa(func, var, model)
            assert _signature(func, var) == reference, (source, var.name)
        verify_function(func, check_ssa=True)


def test_conversion_is_idempotent():
    module = compile_source(PROGRAM)
    func = module.get_function("main")
    model = AliasModel.conservative(module)
    x = module.get_global("x")
    convert_var_to_ssa(func, x, model)
    first = _signature(func, x)
    convert_var_to_ssa(func, x, model)
    assert _signature(func, x) == first
