from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.ir.verify import verify_function
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.profile.interp import run_module
from repro.ssa.destruct import destruct_ssa, drop_memory_ssa, eliminate_phis

from tests.support import simple_loop


def test_eliminate_simple_phi():
    module = parse_module(
        """
        func @main(%c) {
        entry:
          br %c, a, b
        a:
          %x = add 1, 0
          jmp join
        b:
          %y = add 2, 0
          jmp join
        join:
          %v = phi [a: %x, b: %y]
          ret %v
        }
        """
    )
    func = module.get_function("main")
    eliminate_phis(func)
    verify_function(func)
    assert not any(isinstance(i, I.Phi) for i in func.instructions())
    assert run_module(module, args=[1]).return_value == 1
    assert run_module(module, args=[0]).return_value == 2


def test_eliminate_loop_phi_preserves_semantics():
    module, func = simple_loop(trip_count=7)
    expected = run_module(module, entry="loop")
    eliminate_phis(func)
    verify_function(func)
    result = run_module(module, entry="loop")
    assert result.globals_snapshot() == expected.globals_snapshot()


def test_swap_cycle_broken_with_temp():
    module = parse_module(
        """
        func @main() {
        entry:
          jmp header
        header:
          %a = phi [entry: 1, body: %b]
          %b = phi [entry: 2, body: %a]
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 3
          br %c, body, done
        body:
          %i2 = add %i, 1
          jmp header
        done:
          print %a, %b
          ret
        }
        """
    )
    func = module.get_function("main")
    expected = run_module(module).output
    eliminate_phis(func)
    verify_function(func)
    assert run_module(module).output == expected == [(2, 1)]
    # A temp was needed somewhere for the a/b swap.
    assert any(
        isinstance(i, I.Copy) and i.dst.name.startswith("swap")
        for i in func.instructions()
    )


def test_lost_copy_via_critical_edge_split():
    # Phi target used after the loop; the back edge is critical and must
    # be split for correctness.
    module = parse_module(
        """
        func @main() {
        entry:
          jmp header
        header:
          %x = phi [entry: 0, header2: %x2]
          %x2 = add %x, 1
          %c = lt %x2, 4
          jmp header2
        header2:
          br %c, header, done
        done:
          ret %x
        }
        """
    )
    func = module.get_function("main")
    expected = run_module(module).return_value
    eliminate_phis(func)
    verify_function(func)
    assert run_module(module).return_value == expected == 3


def test_drop_memory_ssa():
    module, func = simple_loop()
    build_memory_ssa(func, AliasModel.conservative(module))
    assert any(isinstance(i, I.MemPhi) for i in func.instructions())
    drop_memory_ssa(func)
    assert not any(isinstance(i, I.MemPhi) for i in func.instructions())
    assert all(not i.mem_uses and not i.mem_defs for i in func.instructions())
    expected = run_module(module, entry="loop")
    assert expected.globals_snapshot()["x"] == 10


def test_destruct_full():
    module, func = simple_loop()
    build_memory_ssa(func, AliasModel.conservative(module))
    destruct_ssa(func)
    verify_function(func)
    assert not any(i.is_phi for i in func.instructions())
    assert run_module(module, entry="loop").globals_snapshot()["x"] == 10
