"""Tests for the batched incremental SSA update (paper Section 4.5).

The centerpiece reproduces Example 2 (Figures 9 and 10) exactly: the
six-block interval, two cloned stores, three phis placed at the iterated
dominance frontier {b1, b5, b6}, the documented renaming of each use, and
the deletion of the dead phis.
"""

import pytest

from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.ir.verify import verify_function
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.ssa.css96 import css96_update
from repro.ssa.incremental import update_ssa_for_cloned_resources


def build_example2():
    """Figure 9's CFG: b1->(b2,b3), b2->(b4,b5), b3->b5, b4->b6,
    b5->(b1,b6); x defined in b1, used in b3, b4, b5."""
    module = parse_module(
        """
        module m
        global @x = 0
        func @f() {
        b0:
          jmp b1
        b1:
          st @x, 7
          %c1 = copy 1
          br %c1, b2, b3
        b2:
          %c2 = copy 1
          br %c2, b4, b5
        b3:
          %u3 = ld @x
          jmp b5
        b4:
          %u4 = ld @x
          jmp b6
        b5:
          %u5 = ld @x
          %c5 = copy 0
          br %c5, b1, b6
        b6:
          ret
        }
        """
    )
    func = module.get_function("f")
    x = module.get_global("x")

    # Hand-annotate Figure 9's SSA state: a single definition x0 in b1,
    # all three loads reading x0 (no pre-existing phis, as in the figure).
    store_b1 = next(i for i in func.instructions() if isinstance(i, I.Store))
    x0 = func.new_mem_name(x, store_b1)
    store_b1.mem_defs = [x0]
    loads = {i.block.name: i for i in func.instructions() if isinstance(i, I.Load)}
    for load in loads.values():
        load.mem_uses = [x0]
    return module, func, x, x0, store_b1, loads


def clone_stores(func, x, loads):
    """Insert the two cloned stores of Example 2: one in b2, one in b3
    (before b3's use), with fresh names x1 and x2."""
    b2, b3 = func.find_block("b2"), func.find_block("b3")
    st1 = I.Store(x, __import__("repro.ir.values", fromlist=["Const"]).Const(1))
    b2.insert_at_front(st1)
    x1 = func.new_mem_name(x, st1)
    st1.mem_defs = [x1]
    st2 = I.Store(x, __import__("repro.ir.values", fromlist=["Const"]).Const(2))
    b3.insert_before(st2, loads["b3"])
    x2 = func.new_mem_name(x, st2)
    st2.mem_defs = [x2]
    return st1, st2, x1, x2


def test_example2_phi_placement_and_renaming():
    module, func, x, x0, store_b1, loads = build_example2()
    st1, st2, x1, x2 = clone_stores(func, x, loads)

    stats = update_ssa_for_cloned_resources(func, [x0], [x1, x2])

    # Three phis were placed, at the IDF {b1, b5, b6} (Figure 10) —
    # the two dead ones (b1, b6) are deleted again by step 4.
    assert stats.phis_placed == 3
    assert stats.phis_deleted == 2
    b1_phis = list(func.find_block("b1").mem_phis())
    b6_phis = list(func.find_block("b6").mem_phis())
    b5_phis = list(func.find_block("b5").mem_phis())
    assert b1_phis == [] and b6_phis == []
    assert len(b5_phis) == 1

    # "the use at b3 is renamed x2, the use at b4 renamed x1, and the use
    # at b5 renamed x3" (the b5 phi's target).
    assert loads["b3"].mem_uses == [x2]
    assert loads["b4"].mem_uses == [x1]
    x3 = b5_phis[0].dst_name
    assert loads["b5"].mem_uses == [x3]

    # The live phi at b5 joins x1 (via b2) and x2 (via b3).
    incoming = {b.name: n for b, n in b5_phis[0].incoming}
    assert incoming == {"b2": x1, "b3": x2}

    # x0's definition became dead and was removed (step 4 deletes "the
    # dead definitions of the resources in oldResSet").
    assert store_b1.block is None
    assert stats.defs_deleted == 3  # two dead phis + the old store

    verify_function(func, check_ssa=True, check_memssa=True)


def test_example2_semantics_no_dead_code_left():
    module, func, x, x0, store_b1, loads = build_example2()
    st1, st2, x1, x2 = clone_stores(func, x, loads)
    update_ssa_for_cloned_resources(func, [x0], [x1, x2])
    # No empty phis, no unused memory definitions of x anywhere.
    used = set()
    for inst in func.instructions():
        used.update(id(n) for n in inst.mem_uses)
    for inst in func.instructions():
        for name in inst.mem_defs:
            if isinstance(inst, (I.Store, I.MemPhi)):
                assert id(name) in used, f"dead def {name} survived"


def test_update_with_no_clones_is_noop():
    module, func, x, x0, store_b1, loads = build_example2()
    before = [i for i in func.instructions()]
    stats = update_ssa_for_cloned_resources(func, [x0], [])
    assert stats.phis_placed == 0
    assert [i for i in func.instructions()] == before


def test_mixed_variable_rejected():
    module, func, x, x0, store_b1, loads = build_example2()
    y = module.add_global("y")
    bad = func.new_mem_name(y)
    with pytest.raises(ValueError, match="mixed variables"):
        update_ssa_for_cloned_resources(func, [x0], [bad])


def test_entry_name_reaches_unstored_paths():
    # Clone a def on one branch only; the other branch must keep reading
    # the live-on-entry name through a join phi.
    module = parse_module(
        """
        module m
        global @x = 5
        func @f(%c) {
        entry:
          br %c, a, b
        a:
          jmp join
        b:
          jmp join
        join:
          %t = ld @x
          ret %t
        }
        """
    )
    func = module.get_function("f")
    x = module.get_global("x")
    x0 = func.new_mem_name(x)
    x0.version = 0  # entry name
    x0.def_inst = None
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    load.mem_uses = [x0]

    from repro.ir.values import Const

    st = I.Store(x, Const(9))
    func.find_block("a").insert_at_front(st)
    x1 = func.new_mem_name(x, st)
    st.mem_defs = [x1]

    update_ssa_for_cloned_resources(func, [x0], [x1])
    join_phis = list(func.find_block("join").mem_phis())
    assert len(join_phis) == 1
    incoming = {b.name: n for b, n in join_phis[0].incoming}
    assert incoming["a"] is x1
    assert incoming["b"] is x0
    assert load.mem_uses == [join_phis[0].dst_name]
    verify_function(func, check_ssa=True, check_memssa=True)


def test_reuses_existing_phi_instead_of_duplicating():
    # Build real memory SSA (which places phis), then clone a def and
    # check the update reuses the existing join phi.
    module = parse_module(
        """
        module m
        global @x = 0
        func @f(%c) {
        entry:
          br %c, a, b
        a:
          st @x, 1
          jmp join
        b:
          st @x, 2
          jmp join
        join:
          %t = ld @x
          ret %t
        }
        """
    )
    func = module.get_function("f")
    x = module.get_global("x")
    build_memory_ssa(func, AliasModel.conservative(module))
    join = func.find_block("join")
    assert len(list(join.mem_phis())) == 1

    # Clone a store at the end of block a (after the existing one).
    from repro.ir.values import Const

    old = _names_of(func, x)
    st = I.Store(x, Const(3))
    func.find_block("a").insert_before_terminator(st)
    xn = func.new_mem_name(x, st)
    st.mem_defs = [xn]

    stats = update_ssa_for_cloned_resources(func, old, [xn])
    assert stats.phis_reused >= 1
    phis = list(join.mem_phis())
    assert len(phis) == 1  # no duplicate phi
    incoming = {b.name: n for b, n in phis[0].incoming}
    assert incoming["a"] is xn
    verify_function(func, check_ssa=True, check_memssa=True)
    # The shadowed store in a is now dead and was deleted.
    stores_in_a = [
        i for i in func.find_block("a").instructions if isinstance(i, I.Store)
    ]
    assert stores_in_a == [st]


def test_css96_equivalent_to_batched():
    # Run both updaters on identical twin programs; final memory SSA must
    # agree structurally.
    def fresh():
        module, func, x, x0, store_b1, loads = build_example2()
        st1, st2, x1, x2 = clone_stores(func, x, loads)
        return module, func, x, x0, [x1, x2], loads

    _, func_a, xa, x0a, clones_a, loads_a = fresh()
    update_ssa_for_cloned_resources(func_a, [x0a], clones_a)

    _, func_b, xb, x0b, clones_b, loads_b = fresh()
    css96_update(func_b, [x0b], clones_b)

    for name in ("b3", "b4", "b5"):
        ua = loads_a[name].mem_uses[0]
        ub = loads_b[name].mem_uses[0]
        defining_a = type(ua.def_inst).__name__ if ua.def_inst else None
        defining_b = type(ub.def_inst).__name__ if ub.def_inst else None
        assert defining_a == defining_b, name
    na = sum(1 for i in func_a.instructions() if isinstance(i, I.MemPhi))
    nb = sum(1 for i in func_b.instructions() if isinstance(i, I.MemPhi))
    assert na == nb == 1
    verify_function(func_b, check_ssa=True, check_memssa=True)


def _names_of(func, var):
    names, seen = [], set()
    for inst in func.instructions():
        for n in list(inst.mem_uses) + list(inst.mem_defs):
            if n.var is var and id(n) not in seen:
                seen.add(id(n))
                names.append(n)
    return names
