"""Edge cases for the incremental SSA update beyond the paper's Example 2."""

import pytest

from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.ir.values import Const
from repro.ir.verify import verify_function
from repro.ssa.incremental import update_ssa_for_cloned_resources


def _prep(text):
    module = parse_module(text)
    func = list(module.functions.values())[0]
    x = module.get_global("x")
    return module, func, x


def _entry_name(func, x):
    from repro.memory.resources import MemName

    return MemName(x, 0, None)


def _attach_store(func, x, block, position, value=1):
    store = I.Store(x, Const(value))
    block.instructions.insert(position, store)
    store.block = block
    name = func.new_mem_name(x, store)
    store.mem_defs = [name]
    return store, name


def test_two_clones_in_one_block_latest_wins():
    module, func, x = _prep(
        """
        module m
        global @x = 0
        func @f() {
        entry:
          %u = ld @x
          ret %u
        }
        """
    )
    x0 = _entry_name(func, x)
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    load.mem_uses = [x0]
    _, n1 = _attach_store(func, x, func.entry, 0, value=1)
    _, n2 = _attach_store(func, x, func.entry, 1, value=2)
    stats = update_ssa_for_cloned_resources(func, [x0], [n1, n2])
    assert load.mem_uses == [n2]  # nearest preceding definition
    # The shadowed first store is dead and deleted.
    assert n1.def_inst.block is None
    assert stats.defs_deleted == 1
    verify_function(func, check_ssa=True, check_memssa=True)


def test_clone_after_use_does_not_capture_it():
    module, func, x = _prep(
        """
        module m
        global @x = 5
        func @f() {
        entry:
          %u = ld @x
          %v = add %u, 1
          ret %v
        }
        """
    )
    x0 = _entry_name(func, x)
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    load.mem_uses = [x0]
    _, n1 = _attach_store(func, x, func.entry, 1, value=9)  # after the load
    # Keep the clone alive with a use at the ret.
    ret = func.entry.terminator
    ret.mem_uses = [x0]
    update_ssa_for_cloned_resources(func, [x0], [n1])
    assert load.mem_uses == [x0]  # unchanged: clone is below it
    assert ret.mem_uses == [n1]  # renamed: clone dominates the ret
    verify_function(func, check_memssa=True)


def test_loop_clone_creates_live_header_phi():
    module, func, x = _prep(
        """
        module m
        global @x = 0
        func @f() {
        entry:
          jmp h
        h:
          %u = ld @x
          %c = lt %u, 10
          br %c, body, out
        body:
          jmp h
        out:
          ret %u
        }
        """
    )
    x0 = _entry_name(func, x)
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    load.mem_uses = [x0]
    body = func.find_block("body")
    _, n1 = _attach_store(func, x, body, 0)
    stats = update_ssa_for_cloned_resources(func, [x0], [n1])
    header_phis = list(func.find_block("h").mem_phis())
    assert len(header_phis) == 1
    phi = header_phis[0]
    incoming = {b.name: n for b, n in phi.incoming}
    assert incoming["entry"] is x0
    assert incoming["body"] is n1
    assert load.mem_uses == [phi.dst_name]
    verify_function(func, check_ssa=True, check_memssa=True)


def test_no_reaching_definition_raises():
    module, func, x = _prep(
        """
        module m
        global @x = 0
        func @f(%c) {
        entry:
          br %c, a, b
        a:
          jmp join
        b:
          jmp join
        join:
          %u = ld @x
          ret %u
        }
        """
    )
    # Use references a name whose defining instruction was deleted: the
    # updater must fail loudly, not silently miscompile.
    ghost_store, ghost = _attach_store(func, x, func.find_block("b"), 0)
    ghost_store.remove_from_block()
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    load.mem_uses = [ghost]
    store, n1 = _attach_store(func, x, func.find_block("a"), 0)
    with pytest.raises(ValueError, match="detached"):
        update_ssa_for_cloned_resources(func, [ghost], [n1])


def test_clone_into_block_with_other_vars_phi():
    module, func, x = _prep(
        """
        module m
        global @x = 0
        global @y = 0
        func @f(%c) {
        entry:
          br %c, a, b
        a:
          jmp join
        b:
          jmp join
        join:
          %u = ld @x
          ret %u
        }
        """
    )
    y = module.get_global("y")
    join = func.find_block("join")
    # Pre-existing memphi for a DIFFERENT variable at the IDF block.
    yname = func.new_mem_name(y)
    from repro.memory.resources import MemName

    y0 = MemName(y, 0, None)
    yphi = I.MemPhi(y, yname, [(func.find_block("a"), y0), (func.find_block("b"), y0)])
    join.insert_at_front(yphi)

    x0 = _entry_name(func, x)
    load = next(i for i in func.instructions() if isinstance(i, I.Load))
    load.mem_uses = [x0]
    _, n1 = _attach_store(func, x, func.find_block("a"), 0)
    stats = update_ssa_for_cloned_resources(func, [x0], [n1])
    # A NEW phi for @x was placed (the @y phi must not be reused).
    x_phis = [p for p in join.mem_phis() if p.var is x]
    assert len(x_phis) == 1
    assert stats.phis_reused == 0
    incoming = {b.name: n for b, n in x_phis[0].incoming}
    assert incoming["a"] is n1
    assert incoming["b"] is x0
