"""Cleanup passes: DCE, dead-memphi elimination, copy propagation,
dummy-load removal."""

from repro.ir import instructions as I
from repro.ir.parser import parse_module
from repro.ir.values import Const
from repro.ir.verify import verify_function
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.memory.resources import MemName
from repro.passes.copyprop import propagate_copies
from repro.passes.dce import (
    dead_code_elimination,
    dead_memphi_elimination,
    remove_dummy_loads,
)
from repro.profile.interp import run_module

from tests.support import simple_loop


def test_dce_removes_pure_chain():
    module = parse_module(
        """
        func @main() {
        entry:
          %a = add 1, 2
          %b = mul %a, 3
          %c = copy %b
          ret 0
        }
        """
    )
    func = module.get_function("main")
    removed = dead_code_elimination(func)
    assert removed == 3
    assert len(func.entry.instructions) == 1


def test_dce_keeps_side_effects():
    module = parse_module(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          st @x, 1
          %t = ld @x
          print 5
          %r = call @main()
          ret 0
        }
        """
    )
    func = module.get_function("main")
    removed = dead_code_elimination(func)
    # Only the unused load goes; store/print/call stay.
    assert removed == 1
    kinds = [type(i).__name__ for i in func.entry.instructions]
    assert kinds == ["Store", "Print", "Call", "Ret"]


def test_dce_removes_unused_loads_transitively():
    module = parse_module(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          %t = ld @x
          %u = add %t, 1
          ret 0
        }
        """
    )
    func = module.get_function("main")
    assert dead_code_elimination(func) == 2


def test_dce_keeps_used_phi():
    module, func = simple_loop()
    removed = dead_code_elimination(func)
    assert removed == 0  # everything feeds the loop or the store


def test_dead_memphi_cycle_collected():
    # Two memphis that only feed each other must be collected.
    module = parse_module(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 3
          br %c, body, out
        body:
          %i2 = add %i, 1
          jmp h
        out:
          ret
        }
        """
    )
    func = module.get_function("main")
    x = module.get_global("x")
    h = func.find_block("h")
    body = func.find_block("body")
    entry = func.find_block("entry")
    # Hand-build a cyclic pair: phi_h joins (entry, phi_body-ish) ...
    n0 = MemName(x, 0, None)
    n1 = func.new_mem_name(x)
    phi = I.MemPhi(x, n1, [(entry, n0), (body, n1)])  # self-cycle via latch
    h.insert_at_front(phi)
    assert dead_memphi_elimination(func) == 1
    assert list(h.mem_phis()) == []


def test_dead_memphi_kept_when_read():
    module, func = simple_loop()
    build_memory_ssa(func, AliasModel.conservative(module))
    # The loop phi is read by the body load: must survive.
    assert dead_memphi_elimination(func) == 0


def test_copyprop_folds_chains():
    module = parse_module(
        """
        func @main(%a) {
        entry:
          %b = copy %a
          %c = copy %b
          %d = add %c, %b
          ret %d
        }
        """
    )
    func = module.get_function("main")
    folded = propagate_copies(func)
    assert folded == 2
    add = func.entry.instructions[0]
    assert isinstance(add, I.BinOp)
    assert add.lhs is func.params[0] and add.rhs is func.params[0]
    verify_function(func, check_ssa=True)


def test_copyprop_through_phi():
    module = parse_module(
        """
        func @main(%a) {
        entry:
          %b = copy %a
          br %a, l, r
        l:
          jmp join
        r:
          jmp join
        join:
          %v = phi [l: %b, r: 3]
          ret %v
        }
        """
    )
    func = module.get_function("main")
    propagate_copies(func)
    phi = next(func.find_block("join").phis())
    assert phi.value_for(func.find_block("l")) is func.params[0]
    before = run_module(module, args=[1]).return_value
    assert before == 1


def test_copyprop_constant_sources():
    module = parse_module(
        """
        func @main() {
        entry:
          %a = copy 7
          %b = add %a, 1
          ret %b
        }
        """
    )
    func = module.get_function("main")
    propagate_copies(func)
    add = func.entry.instructions[0]
    assert add.lhs == Const(7)
    assert run_module(module).return_value == 8


def test_remove_dummy_loads():
    module, func = simple_loop()
    build_memory_ssa(func, AliasModel.conservative(module))
    x = module.get_global("x")
    name = next(n for i in func.instructions() for n in i.mem_uses if n.var is x)
    func.entry.insert_at_front(I.DummyAliasedLoad(name))
    func.find_block("body").insert_at_front(I.DummyAliasedLoad(name))
    assert remove_dummy_loads(func) == 2
    assert not any(isinstance(i, I.DummyAliasedLoad) for i in func.instructions())


def test_passes_idempotent():
    module, func = simple_loop()
    dead_code_elimination(func)
    propagate_copies(func)
    assert dead_code_elimination(func) == 0
    assert propagate_copies(func) == 0
    assert remove_dummy_loads(func) == 0


def test_dead_memory_elimination_collects_orphaned_store():
    # A store whose only reader is a dead phi web must fall together with
    # the phis (the leak test: see DESIGN.md's cycle-aware sweep note).
    from repro.passes.dce import dead_memory_elimination

    module = parse_module(
        """
        module m
        global @x = 0
        func @main() {
        entry:
          jmp h
        h:
          %i = phi [entry: 0, body: %i2]
          %c = lt %i, 3
          br %c, body, out
        body:
          st @x, %i
          %i2 = add %i, 1
          jmp h
        out:
          ret
        }
        """
    )
    func = module.get_function("main")
    build_memory_ssa(func, AliasModel.conservative(module))
    store = next(i for i in func.instructions() if isinstance(i, I.Store))
    # Sever the observable chain: make the ret stop observing @x.
    for inst in func.instructions():
        if isinstance(inst, I.Ret):
            inst.mem_uses = []
    removed = dead_memory_elimination(func)
    # The loop phi and the store are gone in one sweep.
    assert removed == 2
    assert store.block is None
    assert not any(isinstance(i, I.MemPhi) for i in func.instructions())


def test_dead_memory_elimination_spares_observed_stores():
    from repro.passes.dce import dead_memory_elimination

    module, func = simple_loop()
    build_memory_ssa(func, AliasModel.conservative(module))
    assert dead_memory_elimination(func) == 0  # ret observes @x


def test_dead_memory_elimination_ignores_unannotated_stores():
    from repro.passes.dce import dead_memory_elimination

    module, func = simple_loop()  # no memory SSA built
    assert dead_memory_elimination(func) == 0
    assert any(isinstance(i, I.Store) for i in func.instructions())
