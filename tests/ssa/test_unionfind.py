from repro.ssa.unionfind import UnionFind


class Item:
    def __init__(self, tag):
        self.tag = tag


def test_singletons():
    uf = UnionFind()
    a, b = Item("a"), Item("b")
    uf.add(a)
    uf.add(b)
    assert uf.find(a) is a
    assert not uf.connected(a, b)
    assert len(uf) == 2


def test_union_and_connected():
    uf = UnionFind()
    items = [Item(i) for i in range(6)]
    for x in items:
        uf.add(x)
    uf.union(items[0], items[1])
    uf.union(items[2], items[3])
    uf.union(items[1], items[2])
    assert uf.connected(items[0], items[3])
    assert not uf.connected(items[0], items[4])


def test_find_implicitly_adds():
    uf = UnionFind()
    a = Item("a")
    assert uf.find(a) is a
    assert len(uf) == 1


def test_groups_deterministic_order():
    uf = UnionFind()
    items = [Item(i) for i in range(5)]
    for x in items:
        uf.add(x)
    uf.union(items[3], items[1])
    uf.union(items[4], items[0])
    groups = uf.groups()
    tags = [[i.tag for i in g] for g in groups]
    assert tags == [[0, 4], [1, 3], [2]]


def test_union_idempotent():
    uf = UnionFind()
    a, b = Item("a"), Item("b")
    r1 = uf.union(a, b)
    r2 = uf.union(a, b)
    assert r1 is r2
    assert len(uf.groups()) == 1


def test_identity_not_equality_semantics():
    # Two equal-looking items remain distinct sets.
    uf = UnionFind()
    a, b = Item("same"), Item("same")
    uf.add(a)
    uf.add(b)
    assert not uf.connected(a, b)
