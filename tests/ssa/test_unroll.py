"""Loop unrolling built on the incremental SSA update (paper §4.4's
suggested application)."""


from repro.frontend.lower import compile_source
from repro.ir import instructions as I
from repro.ir.verify import verify_module
from repro.passes.unroll import unroll_module
from repro.profile.interp import run_module
from repro.promotion.pipeline import PromotionPipeline


def observe(module):
    result = run_module(module, max_steps=2_000_000)
    return result.output, result.return_value, result.globals_snapshot()


def check_unroll(src, expect_unrolled=True, entry="main"):
    baseline = observe(compile_source(src))
    module = compile_source(src)
    unrolled = unroll_module(module)
    if expect_unrolled:
        assert unrolled >= 1
    verify_module(module, check_memssa=True)
    assert observe(module) == baseline
    return module, unrolled


def test_simple_counted_loop():
    src = """
    int total = 0;
    int main() {
        for (int i = 0; i < 10; i++) total += i;
        print(total);
        return total;
    }
    """
    module, _ = check_unroll(src)
    # The loop body was duplicated: two stores to @total now exist.
    main = module.get_function("main")
    stores = [
        i for i in main.instructions()
        if isinstance(i, I.Store) and i.var.name == "total"
    ]
    assert len(stores) >= 2


def test_odd_trip_count_exact():
    # No trip-count analysis: the cloned header keeps its exit test, so
    # odd counts work unchanged.
    src = """
    int acc = 1;
    int main() {
        for (int i = 0; i < 7; i++) acc = acc * 2 % 10007;
        print(acc);
        return 0;
    }
    """
    check_unroll(src)


def test_loop_with_branchy_body():
    src = """
    int evens = 0;
    int odds = 0;
    int main() {
        for (int i = 0; i < 21; i++) {
            if (i % 2 == 0) evens++;
            else odds++;
        }
        print(evens, odds);
        return 0;
    }
    """
    check_unroll(src)


def test_loop_with_break_and_call():
    src = """
    int count = 0;
    int seen = 0;
    void note(int v) { seen += v; }
    int main() {
        for (int i = 0; i < 50; i++) {
            count++;
            note(i);
            if (count == 13) break;
        }
        print(count, seen);
        return 0;
    }
    """
    check_unroll(src)


def test_while_loop():
    src = """
    int n = 1000;
    int steps = 0;
    int main() {
        while (n > 1) {
            if (n % 2 == 0) n /= 2;
            else n = 3 * n + 1;
            steps++;
        }
        print(n, steps);
        return steps;
    }
    """
    check_unroll(src)


def test_nested_loops_unroll_inner():
    src = """
    int sum = 0;
    int main() {
        for (int i = 0; i < 6; i++) {
            for (int j = 0; j < 5; j++) {
                sum += i * j;
            }
        }
        print(sum);
        return 0;
    }
    """
    module, unrolled = check_unroll(src)
    assert unrolled >= 1  # the inner loop


def test_pointer_traffic_in_loop():
    src = """
    int x = 0;
    int main() {
        int *p = &x;
        for (int i = 0; i < 9; i++) {
            *p = *p + i;
        }
        print(x);
        return 0;
    }
    """
    check_unroll(src)


def test_unroll_then_promote_composes():
    src = """
    int hits = 0;
    void rare() { print(hits); }
    int main() {
        for (int i = 0; i < 100; i++) {
            hits += 2;
            if (hits == 44) rare();
        }
        print(hits);
        return 0;
    }
    """
    baseline = observe(compile_source(src))
    module = compile_source(src)
    assert unroll_module(module) >= 1
    result = PromotionPipeline(run_mem2reg=True).run(module)
    assert result.output_matches
    assert observe(module) == baseline
    # Promotion still removes the hot loop's traffic after unrolling.
    assert result.dynamic_after.total < result.dynamic_before.total / 2


def test_oversized_loops_skipped():
    body = "\n".join(f"if (i % {k + 3} == 0) a{k}++;" for k in range(12))
    decls = "\n".join(f"int a{k} = 0;" for k in range(12))
    src = f"""
    {decls}
    int main() {{
        for (int i = 0; i < 10; i++) {{
            {body}
        }}
        return a0;
    }}
    """
    module = compile_source(src)
    assert unroll_module(module, max_loop_blocks=4) == 0


def test_bailout_on_register_phis():
    # After mem2reg, loop state lives in register phis; the unroller must
    # refuse rather than mis-clone.
    from repro.memory.aliasing import AliasModel
    from repro.passes.unroll import unroll_function
    from repro.ssa.construct import construct_ssa

    module = compile_source(
        """
        int g = 0;
        int main() {
            for (int i = 0; i < 5; i++) g += i;
            return g;
        }
        """
    )
    func = module.get_function("main")
    construct_ssa(func)  # now the loop has register phis
    assert unroll_function(func, AliasModel.conservative(module)) == 0


def test_bailout_on_improper_loop():
    from repro.ir.parser import parse_module
    from repro.memory.aliasing import AliasModel
    from repro.passes.unroll import unroll_function

    module = parse_module(
        """
        module m
        global @x = 0
        func @f(%c) {
        entry:
          br %c, a, b
        a:
          %t1 = ld @x
          %ca = eq %t1, 1
          br %ca, b, done
        b:
          st @x, 2
          %cb = ld @x
          br %cb, a, done
        done:
          ret
        }
        """
    )
    func = module.get_function("f")
    assert unroll_function(func, AliasModel.conservative(module)) == 0


def test_unroll_counts_reported():
    src = """
    int a = 0;
    int b = 0;
    int main() {
        for (int i = 0; i < 4; i++) a += i;
        for (int j = 0; j < 3; j++) b += j;
        return a + b;
    }
    """
    module = compile_source(src)
    from repro.passes.unroll import unroll_module

    assert unroll_module(module) == 2
