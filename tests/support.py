"""Shared test helpers: tiny CFG factories used across the suite."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ir import Function, IRBuilder, Module
from repro.ir.parser import parse_module


def empty_function(
    name: str = "f", params: Optional[List[str]] = None
) -> Tuple[Module, Function, IRBuilder]:
    module = Module()
    func = module.new_function(name, params or [])
    return module, func, IRBuilder(func)


def diamond() -> Tuple[Module, Function]:
    """entry -> (left|right) -> join; global x written on both arms."""
    module = parse_module(
        """
        module m
        global @x = 0

        func @diamond() {
        entry:
          %c = ld @x
          br %c, left, right
        left:
          st @x, 1
          jmp join
        right:
          st @x, 2
          jmp join
        join:
          ret 0
        }
        """
    )
    return module, module.get_function("diamond")


def simple_loop(trip_count: int = 10) -> Tuple[Module, Function]:
    """Counted loop incrementing global x via load/store each iteration."""
    module = parse_module(
        f"""
        module m
        global @x = 0

        func @loop() {{
        entry:
          jmp header
        header:
          %i = phi [entry: 0, body: %inext]
          %c = lt %i, {trip_count}
          br %c, body, exitb
        body:
          %t = ld @x
          %t2 = add %t, 1
          st @x, %t2
          %inext = add %i, 1
          jmp header
        exitb:
          ret 0
        }}
        """
    )
    return module, module.get_function("loop")


def nested_loops() -> Tuple[Module, Function]:
    """Two-level loop nest over global x (outer 10, inner 5)."""
    module = parse_module(
        """
        module m
        global @x = 0

        func @nest() {
        entry:
          jmp oh
        oh:
          %i = phi [entry: 0, olatch: %inext]
          %c1 = lt %i, 10
          br %c1, ih0, oexit
        ih0:
          jmp ih
        ih:
          %j = phi [ih0: 0, ibody: %jnext]
          %c2 = lt %j, 5
          br %c2, ibody, olatch
        ibody:
          %t = ld @x
          %t2 = add %t, %i
          st @x, %t2
          %jnext = add %j, 1
          jmp ih
        olatch:
          %inext = add %i, 1
          jmp oh
        oexit:
          ret 0
        }
        """
    )
    return module, module.get_function("nest")


def irreducible() -> Tuple[Module, Function]:
    """An improper interval: two entries (a and b) into the cycle a <-> b."""
    module = parse_module(
        """
        module m
        global @x = 0

        func @irr() {
        entry:
          %c = ld @x
          br %c, a, b
        a:
          %t1 = ld @x
          %ca = eq %t1, 1
          br %ca, b, done
        b:
          %t2 = ld @x
          %cb = eq %t2, 2
          br %cb, a, done
        done:
          ret 0
        }
        """
    )
    return module, module.get_function("irr")
